//! Benchmarks of the substrates: topology construction, reachability,
//! path sampling, and workload generation.

use criterion::{criterion_group, criterion_main, Criterion};
use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::paths::MinimalPathSampler;
use routing_core::workloads;
use std::sync::Arc;

fn bench_builders(c: &mut Criterion) {
    let mut g = c.benchmark_group("builders");
    g.bench_function("butterfly_10", |b| {
        b.iter(|| builders::butterfly(10).num_edges());
    });
    g.bench_function("mesh_64x64", |b| {
        b.iter(|| builders::mesh(64, 64, MeshCorner::TopLeft).0.num_edges());
    });
    g.bench_function("complete_32x16", |b| {
        b.iter(|| builders::complete_leveled(32, 16).num_edges());
    });
    g.bench_function("random_leveled_L64", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        b.iter(|| builders::random_leveled(64, 4..=16, 0.3, &mut rng).num_edges());
    });
    g.finish();
}

fn bench_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("paths");
    let net = builders::complete_leveled(32, 12);
    let dst = net.nodes_at_level(32)[0];
    g.bench_function("sampler_build_complete_32x12", |b| {
        b.iter(|| MinimalPathSampler::new(&net, dst).reaches(net.nodes_at_level(0)[0]));
    });
    let sampler = MinimalPathSampler::new(&net, dst);
    let src = net.nodes_at_level(0)[0];
    g.bench_function("sample_one_path", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        b.iter(|| sampler.sample(&net, src, &mut rng).unwrap().len());
    });
    let bf = builders::butterfly(12);
    let coords = ButterflyCoords { k: 12 };
    g.bench_function("bit_fixing_bf12", |b| {
        b.iter(|| routing_core::paths::bit_fixing(&bf, &coords, 123, 3456).len());
    });
    g.finish();
}

fn bench_levelize(c: &mut Criterion) {
    let mut g = c.benchmark_group("levelize");
    // A dense random DAG with 400 nodes.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let mut dag = leveled_net::levelize::Dag::new(400);
    for u in 0..400u32 {
        for v in (u + 1)..400u32 {
            if rand::Rng::gen_bool(&mut rng, 0.02) {
                dag.add_edge(u, v);
            }
        }
    }
    g.bench_function("random_dag_400", |b| {
        b.iter(|| leveled_net::levelize(&dag).unwrap().net.num_edges());
    });
    g.bench_function("benes_8", |b| b.iter(|| builders::benes(8).0.num_edges()));
    g.finish();
}

fn bench_workloads(c: &mut Criterion) {
    let mut g = c.benchmark_group("workloads");
    let net = Arc::new(builders::butterfly(8));
    let coords = ButterflyCoords { k: 8 };
    g.bench_function("butterfly_permutation_k8", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| workloads::butterfly_permutation(&net, &coords, &mut rng).congestion());
    });
    g.bench_function("random_pairs_64_on_bf8", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| {
            workloads::random_pairs(&net, 64, &mut rng)
                .unwrap()
                .congestion()
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_builders, bench_paths, bench_levelize, bench_workloads
);
criterion_main!(benches);
