//! End-to-end routing benchmarks: one group per experiment family.
//!
//! * `t1_scaling` — the paper's router across instance sizes;
//! * `t4_comparison` — every algorithm on a fixed congested instance;
//! * `t5_mesh` — the §5 mesh workload.

use baselines::{GreedyRouter, RandomPriorityRouter, StoreForwardRouter};
use busch_router::{BuschRouter, Params};
use criterion::{criterion_group, criterion_main, Criterion};
use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::sync::Arc;

fn bench_t1_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("t1_scaling_busch");
    for k in [4u32, 5, 6] {
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let params = Params::auto(&prob);
        g.bench_function(format!("butterfly_{k}_permutation"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(2);
            b.iter(|| {
                let out = BuschRouter::new(params).route(&prob, &mut rng);
                assert!(out.stats.all_delivered());
                out.stats.steps_run
            });
        });
    }
    g.finish();
}

fn bench_t4_comparison(c: &mut Criterion) {
    let mut g = c.benchmark_group("t4_comparison");
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let params = Params::auto(&prob);

    g.bench_function("busch", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        b.iter(|| {
            BuschRouter::new(params)
                .route(&prob, &mut rng)
                .stats
                .steps_run
        });
    });
    g.bench_function("greedy", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| GreedyRouter::new().route(&prob, &mut rng).stats.steps_run);
    });
    g.bench_function("random_priority", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        b.iter(|| {
            RandomPriorityRouter::new()
                .route(&prob, &mut rng)
                .stats
                .steps_run
        });
    });
    g.bench_function("store_forward_fifo", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        b.iter(|| {
            StoreForwardRouter::fifo()
                .route(&prob, &mut rng)
                .stats
                .steps_run
        });
    });
    g.finish();
}

fn bench_t5_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("t5_mesh_transpose");
    for n in [8usize, 16] {
        let (raw, coords) = builders::mesh(n, n, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        let prob = workloads::mesh_transpose(&net, &coords).unwrap();
        let params = Params::auto(&prob);
        g.bench_function(format!("busch_n{n}"), |b| {
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            b.iter(|| {
                let out = BuschRouter::new(params).route(&prob, &mut rng);
                assert!(out.stats.all_delivered());
                out.stats.steps_run
            });
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_t1_scaling, bench_t4_comparison, bench_t5_mesh
);
criterion_main!(benches);
