//! Micro-benchmarks of the simulator hot paths: conflict resolution, the
//! per-step engine cycle, and the store-and-forward queue machinery.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hotpotato_sim::conflict::{self, Contender};
use hotpotato_sim::{store_forward, ExitKind, Simulation};
use leveled_net::builders;
use leveled_net::NodeId;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

/// A wide conflict: `width` packets converge on one node, all wanting the
/// same edge.
fn converging_sim(width: usize) -> (Simulation<()>, NodeId, Vec<Contender>) {
    let net = Arc::new(builders::complete_leveled(3, width));
    let mid = net.nodes_at_level(1)[0];
    let top = net.nodes_at_level(2)[0];
    let dest = net.nodes_at_level(3)[0];
    let paths: Vec<routing_core::Path> = net
        .nodes_at_level(0)
        .iter()
        .map(|&src| routing_core::Path::from_nodes(&net, &[src, mid, top, dest]).unwrap())
        .collect();
    let prob = Arc::new(RoutingProblem::new(Arc::clone(&net), paths).unwrap());
    let n = prob.num_packets();
    let mut sim = Simulation::builder(prob, vec![(); n]).build();
    for p in 0..n as u32 {
        sim.try_inject(p).unwrap();
    }
    sim.finish_step().unwrap();
    let contenders: Vec<Contender> = sim
        .arrivals(mid)
        .iter()
        .map(|&p| Contender {
            pkt: p,
            desired: sim.next_move_of(p).unwrap(),
            priority: 1,
            arrival: sim.packet(p).last_move,
        })
        .collect();
    (sim, mid, contenders)
}

fn bench_conflict(c: &mut Criterion) {
    let mut g = c.benchmark_group("conflict_resolve");
    for width in [4usize, 16, 64] {
        let (sim, node, contenders) = converging_sim(width);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        g.bench_function(format!("width_{width}"), |b| {
            b.iter(|| {
                conflict::resolve(&sim, node, &contenders, true, &mut rng)
                    .expect("resolvable")
                    .len()
            });
        });
    }
    g.finish();
}

fn bench_engine_step(c: &mut Criterion) {
    // Measure one full engine cycle (dispatch + finish) with many packets
    // in flight, by advancing a greedy-style wavefront on a butterfly.
    let mut g = c.benchmark_group("engine_step");
    for k in [6u32, 8] {
        let net = Arc::new(builders::butterfly(k));
        let coords = leveled_net::builders::ButterflyCoords { k };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let prob = Arc::new(workloads::butterfly_permutation(&net, &coords, &mut rng));
        g.bench_function(format!("butterfly_{k}_one_wave"), |b| {
            b.iter_batched(
                || {
                    let n = prob.num_packets();
                    let mut sim = Simulation::builder(Arc::clone(&prob), vec![(); n]).build();
                    for p in 0..n as u32 {
                        sim.try_inject(p).unwrap();
                    }
                    sim.finish_step().unwrap();
                    sim
                },
                |mut sim| {
                    let mut rng = ChaCha8Rng::seed_from_u64(3);
                    for v in sim.occupied_nodes() {
                        let arr = sim.arrivals(v).to_vec();
                        let contenders: Vec<Contender> = arr
                            .iter()
                            .map(|&p| Contender {
                                pkt: p,
                                desired: sim.next_move_of(p).unwrap(),
                                priority: 0,
                                arrival: sim.packet(p).last_move,
                            })
                            .collect();
                        for e in conflict::resolve(&sim, v, &contenders, true, &mut rng)
                            .expect("resolvable")
                        {
                            let kind = if e.won {
                                ExitKind::Advance
                            } else {
                                ExitKind::Deflect { safe: e.safe }
                            };
                            sim.stage_exit(e.pkt, e.mv, kind).unwrap();
                        }
                    }
                    sim.finish_step().unwrap();
                    sim.now()
                },
                BatchSize::SmallInput,
            );
        });
    }
    g.finish();
}

fn bench_store_forward(c: &mut Criterion) {
    let mut g = c.benchmark_group("store_forward");
    let net = Arc::new(builders::butterfly(8));
    let coords = leveled_net::builders::ButterflyCoords { k: 8 };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    g.bench_function("bit_reversal_bf8", |b| {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        b.iter(|| {
            let out = store_forward::route(
                &prob,
                store_forward::StoreForwardConfig::default(),
                &mut rng,
            );
            assert!(out.stats.all_delivered());
            out.stats.steps_run
        });
    });
    g.finish();
}

fn bench_replay(c: &mut Criterion) {
    // Record a full greedy run, then measure the independent audit.
    let mut g = c.benchmark_group("replay_verify");
    let net = Arc::new(builders::butterfly(7));
    let coords = leveled_net::builders::ButterflyCoords { k: 7 };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let cfg = baselines::GreedyConfig {
        record: true,
        ..Default::default()
    };
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let out = baselines::GreedyRouter::with_config(cfg).route(&prob, &mut rng);
    let record = out.record.expect("recording enabled");
    g.bench_function("greedy_bf7_bitrev", |b| {
        b.iter(|| {
            hotpotato_sim::replay::verify(&prob, &record, &out.stats)
                .expect("clean run")
                .moves
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_conflict, bench_engine_step, bench_store_forward, bench_replay
);
criterion_main!(benches);
