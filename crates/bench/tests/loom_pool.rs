//! Loom model of the sweep worker pool (`bench::pool_core`).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; each test explores
//! every bounded thread schedule of a small pool interaction and must
//! hold in all of them:
//!
//! * submit/drain — jobs submitted before `wait` all run, exactly once;
//! * shutdown — queued jobs still run before workers exit, and joining
//!   never deadlocks;
//! * panic propagation — a panicking job still hits the completion
//!   latch (so the submitter cannot hang) and its payload is captured;
//! * worker contention — two workers sharing the queue mutex never
//!   deadlock or drop a job.
//!
//! Plus the intra-run band handoff (`BandResults`, the per-step
//! rendezvous of the sharded engine driver):
//!
//! * band isolation — a worker posting into an already-filled slot
//!   panics under every schedule (two workers can never both claim a
//!   band without tripping the overlap assertion);
//! * reduction order — `wait_all` returns outputs in band-index order
//!   regardless of which worker finished first, so the merge that
//!   consumes them is schedule-independent.
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p bench --test loom_pool`
#![cfg(loom)]

use bench::pool_core::{BandResults, CompletionLatch, PanicSlot, PoolCore};
use loom::sync::{Arc, Mutex};

fn noop_worker_init() {}

#[test]
fn submitted_jobs_all_run_before_wait_returns() {
    loom::model(|| {
        let pool = PoolCore::new(1, noop_worker_init);
        let latch = Arc::new(CompletionLatch::new(2));
        let hits = Arc::new(Mutex::new(0u32));
        for _ in 0..2 {
            let latch = Arc::clone(&latch);
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                *hits.lock().unwrap() += 1;
                latch.complete_one();
            }))
            .unwrap();
        }
        latch.wait();
        assert_eq!(*hits.lock().unwrap(), 2, "every submitted job ran");
        pool.shutdown();
    });
}

#[test]
fn shutdown_drains_queued_jobs_then_joins() {
    loom::model(|| {
        let pool = PoolCore::new(1, noop_worker_init);
        let hits = Arc::new(Mutex::new(0u32));
        for _ in 0..2 {
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                *hits.lock().unwrap() += 1;
            }))
            .unwrap();
        }
        // No latch: shutdown alone must guarantee the queue is drained
        // (disconnection only surfaces to a worker after the last job).
        pool.shutdown();
        assert_eq!(*hits.lock().unwrap(), 2, "shutdown ran the queued jobs");
    });
}

#[test]
fn panicking_job_reaches_latch_and_payload_survives() {
    loom::model(|| {
        let pool = PoolCore::new(1, noop_worker_init);
        let latch = Arc::new(CompletionLatch::new(1));
        let slot = Arc::new(PanicSlot::new());
        {
            let latch = Arc::clone(&latch);
            let slot = Arc::clone(&slot);
            // Mirrors the runner's job wrapper: user code is caught, the
            // payload recorded, and the latch hit unconditionally.
            pool.submit(Box::new(move || {
                let r = std::panic::catch_unwind(|| panic!("sweep job boom"));
                if let Err(payload) = r {
                    slot.record(payload);
                }
                latch.complete_one();
            }))
            .unwrap();
        }
        latch.wait();
        let payload = slot.take().expect("panic payload captured");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "sweep job boom");
        pool.shutdown();
    });
}

#[test]
fn band_results_preserve_reduction_order_under_any_schedule() {
    loom::model(|| {
        // Two "band workers" post their band id in racing order; the
        // coordinator must still receive [10, 20] — slot order, never
        // completion order. This is the property that makes the sharded
        // step's merge (and therefore the routed trace) deterministic.
        let results = Arc::new(BandResults::new(2));
        let handles: Vec<_> = [(0usize, 10u32), (1, 20)]
            .into_iter()
            .map(|(band, value)| {
                let results = Arc::clone(&results);
                loom::thread::spawn(move || results.post(band, value))
            })
            .collect();
        let outputs = results.wait_all();
        assert_eq!(outputs, vec![10, 20], "reduction is in band-index order");
        for h in handles {
            h.join().unwrap();
        }
        // The slots reset: the next step reuses the same rendezvous.
        results.post(0, 7);
        results.post(1, 8);
        assert_eq!(results.wait_all(), vec![7, 8]);
    });
}

#[test]
fn band_results_overlap_is_caught_under_any_schedule() {
    loom::model(|| {
        // Two workers erroneously claim the same band. Whichever posts
        // second must hit the overlap assertion — under every
        // interleaving, never silently losing a result. The panic is the
        // guarantee: band partitions that overlap cannot go unnoticed.
        let results = Arc::new(BandResults::<u32>::new(1));
        let racer = {
            let results = Arc::clone(&results);
            loom::thread::spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| results.post(0, 1)))
                    .is_err()
            })
        };
        let here_panicked =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| results.post(0, 2))).is_err();
        let racer_panicked = racer.join().unwrap();
        assert!(
            here_panicked ^ racer_panicked,
            "exactly one of the two same-band posts must trip the overlap assertion"
        );
    });
}

#[test]
fn two_workers_share_the_queue_without_deadlock() {
    loom::model(|| {
        let pool = PoolCore::new(2, noop_worker_init);
        let latch = Arc::new(CompletionLatch::new(2));
        let hits = Arc::new(Mutex::new(0u32));
        for _ in 0..2 {
            let latch = Arc::clone(&latch);
            let hits = Arc::clone(&hits);
            pool.submit(Box::new(move || {
                *hits.lock().unwrap() += 1;
                latch.complete_one();
            }))
            .unwrap();
        }
        latch.wait();
        assert_eq!(*hits.lock().unwrap(), 2);
        pool.shutdown();
    });
}
