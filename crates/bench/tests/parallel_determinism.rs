//! Determinism under parallelism: sweep results must be byte-identical
//! regardless of the worker-thread budget. The pool distributes contiguous
//! chunks and writes results back by index, and every run seeds its own
//! rng — so nothing about the output may depend on scheduling.

use bench::runner::{self, parallel_map_with_threads};
use busch_router::Params;
use leveled_net::builders;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::{workloads, RoutingProblem};
use std::sync::Arc;

/// A seed sweep over a fixed instance, rendered to a canonical string so
/// comparisons catch any divergence (delivery times, deflections,
/// counters — everything a table could print).
fn sweep(problem: &Arc<RoutingProblem>, seeds: Vec<u64>, threads: usize) -> String {
    let params = Params::auto(problem);
    let rows = parallel_map_with_threads(
        seeds,
        |seed| {
            let b = runner::run_busch(problem, params, seed);
            let g = runner::run_greedy(problem, seed);
            format!(
                "seed={seed} busch(mk={} defl={} moves={} viol={}) greedy(mk={} defl={})",
                b.makespan,
                b.deflections,
                b.counters.get("moves").copied().unwrap_or(0),
                b.violations,
                g.makespan,
                g.deflections,
            )
        },
        threads,
    );
    rows.join("\n")
}

#[test]
fn sweep_results_identical_for_every_thread_count() {
    let mut wrng = ChaCha8Rng::seed_from_u64(0xD15C0);
    let net = Arc::new(builders::butterfly(5));
    let problem = workloads::random_pairs(&net, 48, &mut wrng).unwrap();
    let seeds: Vec<u64> = (0..12).collect();

    let max = std::thread::available_parallelism().map_or(4, std::num::NonZero::get);
    let reference = sweep(&problem, seeds.clone(), 1);
    for threads in [2, max] {
        let got = sweep(&problem, seeds.clone(), threads);
        assert_eq!(got, reference, "sweep output diverged at {threads} threads");
    }
}

#[test]
fn hotpotato_threads_env_override_is_respected_and_deterministic() {
    // `configured_threads` re-reads the environment on every call, so the
    // override can be exercised inside one process. Serialize against
    // other tests by running both checks in this single #[test].
    let mut wrng = ChaCha8Rng::seed_from_u64(0xBEEF);
    let net = Arc::new(builders::butterfly(4));
    let problem = workloads::random_pairs(&net, 24, &mut wrng).unwrap();
    let seeds: Vec<u64> = (0..8).collect();

    std::env::set_var("HOTPOTATO_THREADS", "1");
    assert_eq!(runner::configured_threads(), 1);
    let single: Vec<String> = runner::parallel_map(seeds.clone(), |seed| {
        let s = runner::run_greedy(&problem, seed);
        format!("{seed}:{}:{}", s.makespan, s.deflections)
    });

    std::env::set_var("HOTPOTATO_THREADS", "3");
    assert_eq!(runner::configured_threads(), 3);
    let triple: Vec<String> = runner::parallel_map(seeds, |seed| {
        let s = runner::run_greedy(&problem, seed);
        format!("{seed}:{}:{}", s.makespan, s.deflections)
    });

    std::env::remove_var("HOTPOTATO_THREADS");
    assert_eq!(single, triple, "env-configured budgets changed the output");
}
