//! Negative tests: each lint must fire on its seeded-violation fixture
//! with the exact diagnostic (file, 1-based line, lint name, message)
//! recorded in the fixture's `expected.txt` — and the real workspace
//! must be clean.
//!
//! This duplicates what `cargo xtask fixtures` checks so that a plain
//! `cargo test` also proves the lints are live, not just compiled.

use std::path::{Path, PathBuf};
use xtask::{closure, coverage, determinism, hotpath, nopanic, schemafp, Config, Diagnostic};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn fixture(name: &str) -> Config {
    Config::new(repo_root().join("crates/xtask/fixtures").join(name))
}

fn expected(name: &str) -> Vec<String> {
    let path = repo_root()
        .join("crates/xtask/fixtures")
        .join(name)
        .join("expected.txt");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
        .lines()
        .filter(|l| !l.is_empty())
        .map(String::from)
        .collect()
}

fn rendered(diags: Vec<Diagnostic>) -> Vec<String> {
    diags.iter().map(ToString::to_string).collect()
}

#[test]
fn hotpath_lint_fires_on_seeded_allocation() {
    let got = rendered(hotpath::check(&fixture("hotpath_violation")));
    assert_eq!(got, expected("hotpath_violation"));
}

#[test]
fn hotpath_lint_fires_on_seeded_soa_dispatch_allocation() {
    // The data-oriented engine's shape specifically: a dispatch-style
    // loop over occupied nodes whose scratch should live in a reused
    // band-local buffer, seeded with per-call allocations instead.
    let got = rendered(hotpath::check(&fixture("hotpath_soa_violation")));
    assert_eq!(got, expected("hotpath_soa_violation"));
}

#[test]
fn hotpath_lint_fires_on_seeded_trace_buffer_allocation() {
    // The trace writer's shape: a per-event emit hook that must append
    // into the observer's reused sized buffer, seeded with a fresh
    // String per event instead.
    let got = rendered(hotpath::check(&fixture("hotpath_tracebuf_violation")));
    assert_eq!(got, expected("hotpath_tracebuf_violation"));
}

#[test]
fn schema_drift_lint_fires_on_stale_fingerprint() {
    let got = rendered(schemafp::check(&fixture("schema_drift")));
    assert_eq!(got, expected("schema_drift"));
}

#[test]
fn coverage_lint_fires_in_both_directions() {
    let got = rendered(coverage::check(&fixture("coverage_gap")));
    assert_eq!(got, expected("coverage_gap"));
}

#[test]
fn bless_refuses_unbumped_drift() {
    // The schema_drift fixture models exactly the state --bless must not
    // paper over: fingerprint moved, SCHEMA_VERSION did not.
    let err = schemafp::bless(&fixture("schema_drift"))
        .expect_err("bless must refuse drift without a version bump");
    assert_eq!(err.lint, "schema-drift");
    assert_eq!(err.file, "crates/trace/src/schema.rs");
    assert!(err.msg.contains("bump SCHEMA_VERSION"), "{}", err.msg);
}

#[test]
fn closure_lint_fires_on_seeded_transitive_allocation() {
    let got = rendered(closure::check(&fixture("hotpath_closure_violation")));
    assert_eq!(got, expected("hotpath_closure_violation"));
}

#[test]
fn closure_fixture_is_invisible_to_the_intraprocedural_lint() {
    // The acceptance criterion for the call-graph layer: the seeded
    // allocation sits two calls below the hot-path fn, so the old
    // per-function `hot-path-alloc` must see a clean tree while the
    // closure lint flags it.
    let cfg = fixture("hotpath_closure_violation");
    let intra = hotpath::check(&cfg);
    assert!(
        intra.is_empty(),
        "intraprocedural lint must miss it: {intra:#?}"
    );
    assert!(!closure::check(&cfg).is_empty());
}

#[test]
fn nopanic_lint_fires_on_seeded_panics() {
    let got = rendered(nopanic::check(&fixture("nopanic_violation")));
    assert_eq!(got, expected("nopanic_violation"));
}

#[test]
fn nopanic_fixture_counts_its_allowed_site() {
    // The fixture carries exactly one `// lint: allow-panic(reason)`
    // site; it must be suppressed from the diagnostics AND counted.
    let (diags, allowed) = nopanic::check_counted(&fixture("nopanic_violation"));
    assert_eq!(allowed, 1);
    assert!(
        !diags.iter().any(|d| d.msg.contains("table[0]")),
        "suppressed site leaked: {diags:#?}"
    );
}

#[test]
fn determinism_lint_fires_on_seeded_nondeterminism() {
    let got = rendered(determinism::check(&fixture("determinism_violation")));
    assert_eq!(got, expected("determinism_violation"));
}

#[test]
fn real_workspace_is_clean() {
    let cfg = Config::new(repo_root());
    let mut diags = hotpath::check(&cfg);
    diags.extend(schemafp::check(&cfg));
    diags.extend(coverage::check(&cfg));
    let g = xtask::callgraph::CallGraph::build(&cfg);
    diags.extend(closure::check_graph(&g));
    diags.extend(nopanic::check_graph(&g).0);
    diags.extend(determinism::check_graph(&g));
    assert!(diags.is_empty(), "{diags:#?}");
}
