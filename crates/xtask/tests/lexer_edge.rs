//! Pinned token streams for the lexer's edge cases.
//!
//! The interprocedural lints trust the lexer to classify exactly — a
//! raw string mistaken for an identifier, or a char literal mistaken
//! for a lifetime, silently changes what the call-graph and panic-shape
//! matchers see. Each test here pins the full `(kind, text)` stream for
//! one tricky input, so any lexer change that reshapes a stream fails
//! loudly with a diff instead of surfacing as a phantom lint result.

use xtask::lexer::{lex, TokKind};

/// Renders a token stream as `Kind(text)` strings for exact comparison.
fn stream(src: &str) -> Vec<String> {
    lex(src)
        .into_iter()
        .map(|t| format!("{:?}({})", t.kind, t.text))
        .collect()
}

#[test]
fn raw_strings_all_hash_depths() {
    assert_eq!(
        stream(r#####"r"a" r#"b"# r##"c"## br#"d"#"#####),
        [
            r#####"Str(r"a")"#####,
            r#####"Str(r#"b"#)"#####,
            r#####"Str(r##"c"##)"#####,
            r#####"Str(br#"d"#)"#####,
        ]
    );
}

#[test]
fn raw_string_containing_quote_and_hash() {
    // The closing delimiter must match the opening hash count exactly;
    // an interior `"#` does not close an `r##"..."##` string.
    assert_eq!(
        stream(r###"r##"has "# inside"## tail"###),
        [r###"Str(r##"has "# inside"##)"###, "Ident(tail)"]
    );
}

#[test]
fn raw_identifiers_keep_prefix() {
    assert_eq!(
        stream("r#match r#fn ( r#type )"),
        [
            "Ident(r#match)",
            "Ident(r#fn)",
            "Punct(()",
            "Ident(r#type)",
            "Punct())",
        ]
    );
}

#[test]
fn nested_block_comment_is_one_token() {
    assert_eq!(
        stream("/* a /* b /* c */ */ */ x"),
        ["BlockComment(/* a /* b /* c */ */ */)", "Ident(x)"]
    );
}

#[test]
fn block_comment_hides_line_comment_and_string() {
    assert_eq!(
        stream("/* \" // */ y"),
        ["BlockComment(/* \" // */)", "Ident(y)"]
    );
}

#[test]
fn lifetime_char_disambiguation() {
    assert_eq!(
        stream("&'a str 'x' '\\'' b'z' 'static"),
        [
            "Punct(&)",
            "Lifetime('a)",
            "Ident(str)",
            "Char('x')",
            "Char('\\'')",
            "Char(b'z')",
            "Lifetime('static)",
        ]
    );
}

#[test]
fn labeled_loop_is_a_lifetime() {
    assert_eq!(
        stream("'outer: loop"),
        ["Lifetime('outer)", "Punct(:)", "Ident(loop)"]
    );
}

#[test]
fn numbers_with_exponents_and_suffixes() {
    assert_eq!(
        stream("1e-3 2.5E+9 0xff_u32 1_000 0b1010 3f64"),
        [
            "Number(1e-3)",
            "Number(2.5E+9)",
            "Number(0xff_u32)",
            "Number(1_000)",
            "Number(0b1010)",
            "Number(3f64)",
        ]
    );
}

#[test]
fn range_and_field_access_are_not_floats() {
    assert_eq!(
        stream("0..n 1..=2 t.0"),
        [
            "Number(0)",
            "Punct(.)",
            "Punct(.)",
            "Ident(n)",
            "Number(1)",
            "Punct(.)",
            "Punct(.)",
            "Punct(=)",
            "Number(2)",
            "Ident(t)",
            "Punct(.)",
            "Number(0)",
        ]
    );
}

#[test]
fn string_escapes_do_not_terminate_early() {
    assert_eq!(
        stream(r#""a\"b" "\\" c"#),
        [r#"Str("a\"b")"#, r#"Str("\\")"#, "Ident(c)"]
    );
}

#[test]
fn marker_comment_survives_amid_edge_cases() {
    // A `// lint:` marker after a raw string on the same logical pass —
    // the marker scan reads LineComment tokens, so this pins that the
    // raw string does not swallow it.
    let toks = lex("let s = r#\"// lint: hot-path\"#; // lint: no-panic\nfn f() {}");
    let comments: Vec<&str> = toks
        .iter()
        .filter(|t| t.kind == TokKind::LineComment)
        .map(|t| t.text.as_str())
        .collect();
    assert_eq!(comments, ["// lint: no-panic"]);
}

#[test]
fn unterminated_constructs_do_not_panic() {
    // Tolerated: the remainder becomes one token.
    assert_eq!(stream("\"open").len(), 1);
    assert_eq!(stream("/* open").len(), 1);
    assert_eq!(stream("r#\"open").len(), 1);
}
