//! Panic-freedom lint (`no-panic`).
//!
//! A fn marked `// lint: no-panic` is a region root: neither its body
//! nor any first-party fn in its transitive callee closure may contain a
//! panic source. The serve request loop, the snapshot exchange, and the
//! streaming admission path carry this marker — a malformed HTTP request
//! or a queue hiccup must surface as an error response or a drop, never
//! as a dead worker thread.
//!
//! Panic sources recognized (token shapes, comments/strings opaque):
//!
//! * the panicking macros — `panic!`, `unreachable!`, `todo!`,
//!   `unimplemented!`, `assert!`, `assert_eq!`, `assert_ne!`
//!   (`debug_assert*` is exempt: compiled out of release builds);
//! * `.unwrap(` / `.expect(` method calls (`unwrap_or`, `unwrap_or_else`,
//!   `expect_err` are distinct identifiers and do not match);
//! * `[…]`-indexing — a `[` whose preceding code token is an identifier,
//!   `)` or `]` (slice/array/map indexing can panic; type positions like
//!   `&mut [u8]` and attribute `#[…]` do not match the shape).
//!
//! # Escape hatch
//!
//! A site-level `// lint: allow-panic(reason)` comment suppresses panic
//! sources on its own line or the line directly below. The reason is
//! mandatory (an empty one is itself a diagnostic) and every suppressed
//! site is counted: `cargo xtask lint` reports the count in its summary
//! table, so the workspace's residual panic surface is a number in every
//! CI log, not a diff archaeology exercise.
//!
//! A second, fn-level valve exists for the engine substrate:
//! `// lint: panics-by-design(reason)` marks a fn whose panics *are*
//! invariant assertions (dense-array indexing in the step engine,
//! exercised by the golden and loom suites). The no-panic closure
//! neither scans such a fn nor descends into it — but unlike
//! `// lint: trusted(reason)`, the marker is invisible to the other
//! closures, so the hot-path allocation sweep still covers the engine.
//!
//! Unresolved calls (std, vendored) are assumed panic-free at the
//! boundary — the caller's *reason to call them with panic-safe inputs*
//! is exactly what the reachable first-party code is checked for.

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::{Config, Diagnostic};

/// Lint name used in diagnostics.
pub const LINT: &str = "no-panic";

/// The site-level escape-hatch marker prefix.
pub const ALLOW: &str = "lint: allow-panic";

/// Macros that unwind.
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Identifiers that may legitimately precede a `[` without forming an
/// indexing expression (`&mut [u8]`, `let x: [u8; 4]`, `in [a, b]`, …).
const NONINDEX_BEFORE_BRACKET: &[&str] = &[
    "mut", "dyn", "ref", "in", "as", "return", "break", "else", "match", "if", "while", "let",
    "const", "static", "move", "where", "impl", "for", "box", "await", "yield",
];

/// Lints the transitive closure of every `// lint: no-panic` fn,
/// returning the diagnostics and the count of `allow-panic` suppressed
/// sites (surfaced in the lint summary table).
pub fn check_counted(cfg: &Config) -> (Vec<Diagnostic>, usize) {
    check_graph(&CallGraph::build(cfg))
}

/// Plain entry point for fixture dispatch.
pub fn check(cfg: &Config) -> Vec<Diagnostic> {
    check_counted(cfg).0
}

/// Graph-reusing entry point.
pub fn check_graph(g: &CallGraph) -> (Vec<Diagnostic>, usize) {
    let roots = g.marked("no-panic");
    let (reach, _cuts) = g.reachable_cut(&roots, &["trusted", "panics-by-design"]);
    let mut diags = Vec::new();
    let mut allowed = 0usize;
    for (&id, parent) in &reach {
        let f = &g.fns[id];
        if f.has_marker("trusted") || f.has_marker("panics-by-design") {
            continue;
        }
        let toks = &g.files[f.file].toks;
        let body = &toks[f.body.0.min(toks.len())..f.body.1.min(toks.len())];
        let allows = allow_lines(body, &f.rel, &mut diags);
        for (line, shape) in panic_sites(body) {
            if allows.contains(&line) || allows.contains(&line.saturating_sub(1)) {
                allowed += 1;
                continue;
            }
            let msg = match parent {
                None => format!("no-panic fn `{}` uses `{shape}` (can panic)", f.name),
                Some(_) => {
                    let chain = g.chain(&reach, id);
                    let root = chain.split(" → ").next().unwrap_or("?");
                    format!(
                        "fn `{}`, reached from no-panic fn `{root}` via {chain}, \
                         uses `{shape}` (can panic)",
                        f.name
                    )
                }
            };
            diags.push(Diagnostic {
                file: f.rel.clone(),
                line,
                lint: LINT,
                msg,
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    (diags, allowed)
}

/// Collects the lines carrying a well-formed `allow-panic(reason)`
/// marker in `body`; malformed markers (no reason) become diagnostics.
fn allow_lines(body: &[Tok], rel: &str, diags: &mut Vec<Diagnostic>) -> Vec<usize> {
    let mut lines = Vec::new();
    for t in body {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text.trim_start_matches('/').trim();
        let Some(rest) = text.strip_prefix(ALLOW) else {
            continue;
        };
        let reason = rest
            .trim()
            .strip_prefix('(')
            .and_then(|r| r.strip_suffix(')'))
            .map_or("", str::trim);
        if reason.is_empty() {
            diags.push(Diagnostic {
                file: rel.to_string(),
                line: t.line,
                lint: LINT,
                msg: "allow-panic marker must carry a reason: `// lint: allow-panic(why)`".into(),
            });
        } else {
            lines.push(t.line);
        }
    }
    lines
}

/// Every panic source in `body`, as `(line, shape)` pairs.
pub fn panic_sites(body: &[Tok]) -> Vec<(usize, String)> {
    let code: Vec<&Tok> = body.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        // Panicking macro: `name !` (not `name ! =`, which cannot occur).
        if t.kind == TokKind::Ident
            && PANIC_MACROS.contains(&t.text.as_str())
            && code.get(i + 1).is_some_and(|n| n.is_punct('!'))
        {
            out.push((t.line, format!("{}!", t.text)));
            i += 2;
            continue;
        }
        // `.unwrap(` / `.expect(`.
        if t.is_punct('.') {
            if let Some(name) = code.get(i + 1).filter(|n| n.kind == TokKind::Ident) {
                if (name.text == "unwrap" || name.text == "expect")
                    && code.get(i + 2).is_some_and(|n| n.is_punct('('))
                {
                    out.push((name.line, format!(".{}()", name.text)));
                    i += 3;
                    continue;
                }
            }
        }
        // Indexing: `expr [ … ]` — `[` preceded by an expression-ending
        // token. Keyword predecessors (`&mut [u8]`, `in [a]`) and
        // attribute `# [` are not indexing.
        if t.is_punct('[') && i > 0 {
            let prev = code[i - 1];
            let indexing = match prev.kind {
                TokKind::Ident => !NONINDEX_BEFORE_BRACKET.contains(&prev.text.as_str()),
                TokKind::Punct => prev.is_punct(')') || prev.is_punct(']'),
                _ => false,
            };
            if indexing {
                out.push((t.line, "[...] indexing".to_string()));
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn graph(src: &str) -> CallGraph {
        let mut g = CallGraph::empty();
        g.add_file("crates/demo/src/lib.rs".into(), "demo".into(), src);
        g.index();
        g
    }

    fn rendered(src: &str) -> (Vec<String>, usize) {
        let (diags, allowed) = check_graph(&graph(src));
        (diags.iter().map(ToString::to_string).collect(), allowed)
    }

    #[test]
    fn unwrap_in_marked_fn_fires() {
        let (diags, _) =
            rendered("// lint: no-panic\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n");
        assert_eq!(
            diags,
            ["crates/demo/src/lib.rs:3: [no-panic] no-panic fn `f` uses `.unwrap()` (can panic)"]
        );
    }

    #[test]
    fn unwrap_or_else_is_not_unwrap() {
        let (diags, _) = rendered(
            "// lint: no-panic\nfn f(x: Option<u32>) -> u32 {\n    x.unwrap_or_else(|| 0)\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn transitive_panic_is_flagged_with_chain() {
        let (diags, _) = rendered(
            "// lint: no-panic\nfn f() { helper(); }\nfn helper() { panic!(\"boom\"); }\n",
        );
        assert_eq!(
            diags,
            [
                "crates/demo/src/lib.rs:3: [no-panic] fn `helper`, reached from no-panic \
              fn `f` via f → helper, uses `panic!` (can panic)"
            ]
        );
    }

    #[test]
    fn indexing_fires_but_type_positions_do_not() {
        let (diags, _) = rendered(
            "// lint: no-panic\nfn f(v: &[u32], s: &mut [u8]) -> u32 {\n    let _: [u8; 2] = [0; 2];\n    v[0]\n}\n",
        );
        assert_eq!(
            diags,
            ["crates/demo/src/lib.rs:4: [no-panic] no-panic fn `f` uses `[...] indexing` (can panic)"]
        );
    }

    #[test]
    fn allow_panic_with_reason_suppresses_and_counts() {
        let (diags, allowed) = rendered(
            "// lint: no-panic\nfn f(x: Option<u32>) -> u32 {\n    // lint: allow-panic(validated at launch)\n    x.expect(\"validated\")\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(allowed, 1);
    }

    #[test]
    fn allow_panic_without_reason_is_a_diagnostic() {
        let (diags, allowed) = rendered(
            "// lint: no-panic\nfn f(x: Option<u32>) -> u32 {\n    // lint: allow-panic\n    x.unwrap()\n}\n",
        );
        assert_eq!(allowed, 0);
        assert_eq!(
            diags.len(),
            2,
            "missing reason + unsuppressed unwrap: {diags:?}"
        );
        assert!(diags[0].contains("must carry a reason"), "{diags:?}");
    }

    #[test]
    fn unmarked_fn_may_panic() {
        let (diags, _) = rendered("fn f() { panic!(\"fine\"); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn debug_assert_is_exempt() {
        let (diags, _) = rendered("// lint: no-panic\nfn f(x: u32) { debug_assert!(x > 0); }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }
}
