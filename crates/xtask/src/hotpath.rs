//! Hot-path allocation lint.
//!
//! A function annotated with a `// lint: hot-path` marker comment is a
//! promise: it runs once per packet per step inside the simulation inner
//! loop, and it does not allocate. This lint makes the promise checkable.
//! Inside the annotated function's body (closures included), none of the
//! following may appear:
//!
//! `Vec::new`, `vec![...]`, `Box::new`, `String::new`, `String::from`,
//! `String::with_capacity`, `format!`, `.clone()`, `.collect()`,
//! `.to_vec()`, `.to_string()`, `.to_owned()`.
//!
//! The match is token-shape based (comments and string literals are
//! opaque), so `"format!"` inside a message string does not fire, while
//! `format ! (...)` with odd spacing does.

use crate::lexer::{lex, Tok, TokKind};
use crate::{Config, Diagnostic};
use std::path::Path;

/// The marker that arms the lint for the next `fn`.
pub const MARKER: &str = "lint: hot-path";

/// One element of a forbidden token shape.
enum Pat {
    /// An identifier with exactly this text.
    I(&'static str),
    /// A punctuation character.
    P(char),
}

use Pat::{I, P};

/// Display name → token shape that must not appear in a hot-path body.
const FORBIDDEN: &[(&str, &[Pat])] = &[
    ("Vec::new", &[I("Vec"), P(':'), P(':'), I("new")]),
    ("vec![...]", &[I("vec"), P('!')]),
    ("Box::new", &[I("Box"), P(':'), P(':'), I("new")]),
    ("String::new", &[I("String"), P(':'), P(':'), I("new")]),
    ("String::from", &[I("String"), P(':'), P(':'), I("from")]),
    (
        "String::with_capacity",
        &[I("String"), P(':'), P(':'), I("with_capacity")],
    ),
    ("format!", &[I("format"), P('!')]),
    (".clone()", &[P('.'), I("clone"), P('(')]),
    (".collect()", &[P('.'), I("collect"), P('(')]),
    (".to_vec()", &[P('.'), I("to_vec"), P('(')]),
    (".to_string()", &[P('.'), I("to_string"), P('(')]),
    (".to_owned()", &[P('.'), I("to_owned"), P('(')]),
];

/// Lints every first-party `.rs` file under `cfg.root`.
pub fn check(cfg: &Config) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for path in crate::workspace_rs_files(cfg) {
        let Ok(src) = std::fs::read_to_string(&path) else {
            continue;
        };
        check_file(cfg, &path, &src, &mut diags);
    }
    diags
}

/// Lints one file's source text (split out for unit tests).
pub fn check_file(cfg: &Config, path: &Path, src: &str, diags: &mut Vec<Diagnostic>) {
    let toks = lex(src);
    let rel = cfg.rel(path);
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::LineComment && t.text.trim_start_matches('/').trim() == MARKER {
            match annotated_fn(&toks, i + 1) {
                Some((name, body)) => scan_body(&rel, &name, body, diags),
                None => diags.push(Diagnostic {
                    file: rel.clone(),
                    line: t.line,
                    lint: "hot-path-alloc",
                    msg: "dangling `// lint: hot-path` marker: no `fn` follows it".into(),
                }),
            }
        }
    }
}

/// Finds the `fn` the marker at `toks[from..]` annotates and returns its
/// name plus body tokens (inside the braces, comments stripped).
fn annotated_fn(toks: &[Tok], from: usize) -> Option<(String, &[Tok])> {
    let fn_kw = (from..toks.len()).find(|&i| toks[i].is_ident("fn"))?;
    let name_idx = (fn_kw + 1..toks.len()).find(|&i| toks[i].kind == TokKind::Ident)?;
    let open = (name_idx + 1..toks.len()).find(|&i| toks[i].is_punct('{'))?;
    let mut depth = 1usize;
    let mut close = open + 1;
    while close < toks.len() && depth > 0 {
        if toks[close].is_punct('{') {
            depth += 1;
        } else if toks[close].is_punct('}') {
            depth -= 1;
        }
        close += 1;
    }
    Some((
        toks[name_idx].text.clone(),
        &toks[open + 1..close.saturating_sub(1)],
    ))
}

/// Reports every forbidden shape occurring in `body`.
fn scan_body(rel: &str, fn_name: &str, body: &[Tok], diags: &mut Vec<Diagnostic>) {
    for (line, name) in shape_hits(body) {
        diags.push(Diagnostic {
            file: rel.to_string(),
            line,
            lint: "hot-path-alloc",
            msg: format!("hot-path fn `{fn_name}` uses `{name}` (allocates per call)"),
        });
    }
}

/// Every forbidden allocation shape in `body`, as `(line, shape)` pairs.
/// Shared with the interprocedural closure lint so both report the same
/// shape vocabulary.
pub fn shape_hits(body: &[Tok]) -> Vec<(usize, &'static str)> {
    let code: Vec<&Tok> = body.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let mut matched = None;
        for (name, pat) in FORBIDDEN {
            if matches_at(&code, i, pat) {
                matched = Some((*name, pat.len()));
                break;
            }
        }
        if let Some((name, len)) = matched {
            out.push((code[i].line, name));
            i += len;
        } else {
            i += 1;
        }
    }
    out
}

fn matches_at(code: &[&Tok], at: usize, pat: &[Pat]) -> bool {
    if at + pat.len() > code.len() {
        return false;
    }
    pat.iter().zip(&code[at..]).all(|(p, t)| match p {
        I(s) => t.is_ident(s),
        P(c) => t.is_punct(*c),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn lint_src(src: &str) -> Vec<String> {
        let cfg = Config::new("/x");
        let mut diags = Vec::new();
        check_file(
            &cfg,
            &PathBuf::from("/x/crates/d/src/lib.rs"),
            src,
            &mut diags,
        );
        diags.into_iter().map(|d| d.to_string()).collect()
    }

    #[test]
    fn clean_hot_path_fn_passes() {
        let diags = lint_src(
            "// lint: hot-path\nfn f(buf: &mut [u32]) -> u32 {\n    buf.iter().sum()\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn clone_in_hot_path_fires_with_line() {
        let diags =
            lint_src("// lint: hot-path\nfn f(v: &Vec<u32>) -> Vec<u32> {\n    v.clone()\n}\n");
        assert_eq!(
            diags,
            ["crates/d/src/lib.rs:3: [hot-path-alloc] hot-path fn `f` uses `.clone()` (allocates per call)"]
        );
    }

    #[test]
    fn unannotated_fn_may_allocate() {
        let diags = lint_src("fn g() -> Vec<u32> { vec![1, 2] }\n");
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn marker_in_string_or_doc_text_does_not_arm() {
        let diags = lint_src(
            "//! mentions `// lint: hot-path` markers\nfn g() -> String { format!(\"x\") }\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn forbidden_name_inside_string_does_not_fire() {
        let diags = lint_src(
            "// lint: hot-path\nfn f() -> &'static str {\n    \"Vec::new format! .clone()\"\n}\n",
        );
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn all_shapes_fire() {
        let body = "// lint: hot-path\nfn f() {\n    let a = Vec::<u8>::new();\n    let b = vec![0u8];\n    let c = Box::new(0);\n    let d = String::from(\"x\");\n    let e = format!(\"{a:?}\");\n    let g = b.to_vec();\n    let h = d.to_owned();\n    let i = e.to_string();\n    let j: Vec<u8> = g.iter().copied().collect();\n    let _ = (a, c, h, i, j);\n}\n";
        let diags = lint_src(body);
        // Vec::<u8>::new() lexes as `Vec :: < u8 > :: new` — the turbofish
        // breaks the plain `Vec::new` shape, which is acceptable: the bare
        // form is what appears in practice. Everything else must fire.
        assert_eq!(diags.len(), 8, "{diags:#?}");
    }

    #[test]
    fn dangling_marker_is_reported() {
        let diags = lint_src("// lint: hot-path\nconst X: u32 = 1;\n");
        assert_eq!(
            diags,
            ["crates/d/src/lib.rs:1: [hot-path-alloc] dangling `// lint: hot-path` marker: no `fn` follows it"]
        );
    }
}
