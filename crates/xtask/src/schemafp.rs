//! Schema-drift fingerprint lint.
//!
//! The trace format is a contract: recorders write it, the offline
//! verifier and the analytics pass both re-read it, and `SCHEMA_VERSION`
//! in `crates/trace/src/schema.rs` is how readers detect incompatible
//! files. This lint makes it impossible to change the wire types without
//! acknowledging that contract:
//!
//! * the normalized token streams of `Meta`, `StatsLine` and
//!   `TraceEvent` (attributes included — a `#[serde(rename)]` is a wire
//!   change) are hashed into a 64-bit fingerprint, together with the
//!   binary codec's tag table and encoder/decoder bodies (`Tag`,
//!   `encode_event`, `decode_event` in `binary.rs`) — the `.hpt` framing
//!   is the same contract in a second encoding;
//! * the committed pair (`schema_version`, `fingerprint`) lives in
//!   `crates/xtask/schema.fingerprint`;
//! * if the hash moves while `SCHEMA_VERSION` stays put, the lint fails
//!   at the `SCHEMA_VERSION` line — bump the version, then re-bless;
//! * `cargo xtask lint --bless` refuses to bless exactly that state, so
//!   the escape hatch cannot silently swallow drift.

use crate::lexer::{lex, Tok, TokKind};
use crate::{fnv1a, Config, Diagnostic};

/// The envelope items whose token streams are pinned, in hash order.
pub const PINNED_ITEMS: &[&str] = &["Meta", "StatsLine", "TraceEvent", "Rollup"];

/// The binary-codec items pinned from `binary.rs`, in hash order. The
/// tag table and the encoder/decoder bodies *are* the `.hpt` wire
/// layout, so they drift under the same version pin as the JSONL types.
pub const PINNED_BINARY_ITEMS: &[&str] = &["Tag", "encode_event", "decode_event"];

/// What the schema source currently says.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Current {
    /// Value of `SCHEMA_VERSION` in schema.rs.
    pub version: u64,
    /// 1-based line of the `SCHEMA_VERSION` declaration.
    pub version_line: usize,
    /// FNV-1a 64 over the normalized pinned-item token streams.
    pub fingerprint: u64,
}

/// What the committed fingerprint file says.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Committed {
    /// `schema_version = N` line.
    pub version: u64,
    /// `fingerprint = 0x...` line.
    pub fingerprint: u64,
}

/// Runs the lint: compares the live schema against the committed pair.
pub fn check(cfg: &Config) -> Vec<Diagnostic> {
    let rel_schema = cfg.rel(&cfg.schema_rs());
    let rel_fp = cfg.rel(&cfg.fingerprint_file());
    let cur = match current(cfg) {
        Ok(c) => c,
        Err(d) => return vec![d],
    };
    let committed = match std::fs::read_to_string(cfg.fingerprint_file()) {
        Ok(text) => match parse_fingerprint_file(&text) {
            Ok(c) => c,
            Err(msg) => {
                return vec![Diagnostic {
                    file: rel_fp,
                    line: 0,
                    lint: "schema-drift",
                    msg,
                }]
            }
        },
        Err(_) => {
            return vec![Diagnostic {
                file: rel_fp,
                line: 0,
                lint: "schema-drift",
                msg: "missing fingerprint file; run `cargo xtask lint --bless`".into(),
            }]
        }
    };

    match (
        cur.fingerprint == committed.fingerprint,
        cur.version == committed.version,
    ) {
        (true, true) => Vec::new(),
        (true, false) => vec![Diagnostic {
            file: rel_schema,
            line: cur.version_line,
            lint: "schema-drift",
            msg: format!(
                "SCHEMA_VERSION is {} but the committed fingerprint was blessed at version {}; \
                 run `cargo xtask lint --bless`",
                cur.version, committed.version
            ),
        }],
        (false, false) => vec![Diagnostic {
            file: rel_schema,
            line: cur.version_line,
            lint: "schema-drift",
            msg: format!(
                "schema types changed and SCHEMA_VERSION was bumped to {}; \
                 run `cargo xtask lint --bless` to commit the new fingerprint",
                cur.version
            ),
        }],
        (false, true) => vec![drift_diag(&rel_schema, &cur, &committed)],
    }
}

/// Recomputes and writes the fingerprint file. Refuses to bless drift
/// that was not accompanied by a `SCHEMA_VERSION` bump.
pub fn bless(cfg: &Config) -> Result<(), Diagnostic> {
    let cur = current(cfg)?;
    if let Ok(text) = std::fs::read_to_string(cfg.fingerprint_file()) {
        if let Ok(old) = parse_fingerprint_file(&text) {
            if cur.fingerprint != old.fingerprint && cur.version == old.version {
                return Err(drift_diag(&cfg.rel(&cfg.schema_rs()), &cur, &old));
            }
        }
    }
    let body = format!(
        "# Trace schema fingerprint — pins the wire types in crates/trace/src/schema.rs.\n\
         # Checked by `cargo xtask lint`; regenerate with `cargo xtask lint --bless`\n\
         # (which requires a SCHEMA_VERSION bump whenever the fingerprint moves).\n\
         schema_version = {}\n\
         fingerprint = {:#018x}\n",
        cur.version, cur.fingerprint
    );
    std::fs::write(cfg.fingerprint_file(), body).map_err(|e| Diagnostic {
        file: cfg.rel(&cfg.fingerprint_file()),
        line: 0,
        lint: "schema-drift",
        msg: format!("cannot write fingerprint file: {e}"),
    })?;
    Ok(())
}

fn drift_diag(rel_schema: &str, cur: &Current, committed: &Committed) -> Diagnostic {
    Diagnostic {
        file: rel_schema.to_string(),
        line: cur.version_line,
        lint: "schema-drift",
        msg: format!(
            "trace schema types drifted (fingerprint {:#018x} != committed {:#018x}) \
             but SCHEMA_VERSION is still {}; bump SCHEMA_VERSION, update readers, \
             then run `cargo xtask lint --bless`",
            cur.fingerprint, committed.fingerprint, cur.version
        ),
    }
}

/// Extracts `SCHEMA_VERSION` and the pinned-item fingerprint from the
/// live schema source.
pub fn current(cfg: &Config) -> Result<Current, Diagnostic> {
    let rel = cfg.rel(&cfg.schema_rs());
    let err = |line: usize, msg: String| Diagnostic {
        file: rel.clone(),
        line,
        lint: "schema-drift",
        msg,
    };
    let src = std::fs::read_to_string(cfg.schema_rs())
        .map_err(|e| err(0, format!("cannot read schema source: {e}")))?;
    let toks = lex(&src);

    let (version, version_line) =
        schema_version(&toks).ok_or_else(|| err(0, "no `SCHEMA_VERSION` constant found".into()))?;

    let mut hash_input = String::new();
    for name in PINNED_ITEMS {
        let span = item_tokens(&toks, name).ok_or_else(|| {
            err(
                0,
                format!("pinned item `{name}` not found in schema source"),
            )
        })?;
        hash_input.push_str("item:");
        hash_input.push_str(name);
        hash_input.push('\n');
        for t in span {
            hash_input.push_str(&t.text);
            hash_input.push(' ');
        }
        hash_input.push('\n');
    }
    // The binary codec rides under the same pin when present (the seeded
    // fixture trees predate the `.hpt` framing and carry only schema.rs).
    if let Ok(bin_src) = std::fs::read_to_string(cfg.binary_rs()) {
        let rel_bin = cfg.rel(&cfg.binary_rs());
        let bin_toks = lex(&bin_src);
        for name in PINNED_BINARY_ITEMS {
            let span = item_tokens(&bin_toks, name).ok_or_else(|| Diagnostic {
                file: rel_bin.clone(),
                line: 0,
                lint: "schema-drift",
                msg: format!("pinned item `{name}` not found in binary codec source"),
            })?;
            hash_input.push_str("binary:");
            hash_input.push_str(name);
            hash_input.push('\n');
            for t in span {
                hash_input.push_str(&t.text);
                hash_input.push(' ');
            }
            hash_input.push('\n');
        }
    }
    Ok(Current {
        version,
        version_line,
        fingerprint: fnv1a(hash_input.into_bytes()),
    })
}

/// Finds `SCHEMA_VERSION` and the numeric literal it is assigned.
fn schema_version(toks: &[Tok]) -> Option<(u64, usize)> {
    let idx = toks.iter().position(|t| t.is_ident("SCHEMA_VERSION"))?;
    let line = toks[idx].line;
    let num = toks[idx + 1..]
        .iter()
        .take(8)
        .find(|t| t.kind == TokKind::Number)?;
    let digits: String = num
        .text
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '_')
        .filter(|c| *c != '_')
        .collect();
    Some((digits.parse().ok()?, line))
}

/// The token span of `struct <name>` / `enum <name>` / `fn <name>`,
/// including any immediately preceding attributes and visibility,
/// comments stripped.
fn item_tokens<'a>(toks: &'a [Tok], name: &str) -> Option<Vec<&'a Tok>> {
    let code: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let kw = (0..code.len()).find(|&i| {
        (code[i].is_ident("struct") || code[i].is_ident("enum") || code[i].is_ident("fn"))
            && code.get(i + 1).is_some_and(|t| t.is_ident(name))
    })?;

    // Walk backward over `pub` and `#[...]` attribute groups.
    let mut start = kw;
    loop {
        if start > 0 && code[start - 1].is_ident("pub") {
            start -= 1;
        } else if start > 0 && code[start - 1].is_punct(']') {
            let mut j = start - 1;
            let mut depth = 0usize;
            loop {
                if code[j].is_punct(']') {
                    depth += 1;
                } else if code[j].is_punct('[') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    return None;
                }
                j -= 1;
            }
            if j > 0 && code[j - 1].is_punct('#') {
                start = j - 1;
            } else {
                break;
            }
        } else {
            break;
        }
    }

    // Walk forward to the matching close brace (or a terminating `;` for
    // unit/tuple items).
    let mut end = kw + 2;
    let mut depth = 0usize;
    while end < code.len() {
        let t = code[end];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                end += 1;
                break;
            }
        } else if t.is_punct(';') && depth == 0 {
            end += 1;
            break;
        }
        end += 1;
    }
    Some(code[start..end].to_vec())
}

/// Parses the committed `schema.fingerprint` key/value file.
pub fn parse_fingerprint_file(text: &str) -> Result<Committed, String> {
    let mut version = None;
    let mut fingerprint = None;
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("malformed fingerprint line: `{line}`"));
        };
        let (key, value) = (key.trim(), value.trim());
        match key {
            "schema_version" => {
                version = Some(
                    value
                        .parse::<u64>()
                        .map_err(|_| format!("bad schema_version: `{value}`"))?,
                );
            }
            "fingerprint" => {
                let hex = value.strip_prefix("0x").unwrap_or(value);
                fingerprint = Some(
                    u64::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad fingerprint: `{value}`"))?,
                );
            }
            other => return Err(format!("unknown fingerprint key: `{other}`")),
        }
    }
    match (version, fingerprint) {
        (Some(version), Some(fingerprint)) => Ok(Committed {
            version,
            fingerprint,
        }),
        _ => Err("fingerprint file must set both schema_version and fingerprint".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r#"
//! Doc.
pub const SCHEMA_VERSION: u32 = 3;

/// Envelope.
#[derive(Debug)]
pub struct Meta { pub v: u32 }

pub struct StatsLine { pub steps: u64 }

#[derive(Debug)]
pub enum TraceEvent { Inject { id: u64 }, Absorb(u64) }

pub struct Rollup { pub seq: u64 }
"#;

    fn toks_fp(src: &str) -> u64 {
        let toks = lex(src);
        let mut input = String::new();
        for name in PINNED_ITEMS {
            for t in item_tokens(&toks, name).unwrap() {
                input.push_str(&t.text);
                input.push(' ');
            }
        }
        fnv1a(input.into_bytes())
    }

    #[test]
    fn version_and_line_are_found() {
        let toks = lex(SCHEMA);
        assert_eq!(schema_version(&toks), Some((3, 3)));
    }

    #[test]
    fn item_span_includes_attributes_but_not_comments() {
        let toks = lex(SCHEMA);
        let span = item_tokens(&toks, "Meta").unwrap();
        let texts: Vec<&str> = span.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            [
                "#", "[", "derive", "(", "Debug", ")", "]", "pub", "struct", "Meta", "{", "pub",
                "v", ":", "u32", "}"
            ]
        );
    }

    #[test]
    fn comment_and_whitespace_changes_do_not_move_the_hash() {
        let reformatted = SCHEMA
            .replace("/// Envelope.", "/// Envelope!!! different doc.")
            .replace("{ pub v: u32 }", "{\n    pub v: u32,\n}");
        // Trailing comma after the last field is a token change — use a
        // whitespace-only reflow instead.
        let reflow = SCHEMA.replace("{ pub v: u32 }", "{\n    pub v: u32\n}");
        assert_eq!(toks_fp(SCHEMA), toks_fp(&reflow));
        let _ = reformatted;
    }

    #[test]
    fn fn_items_are_pinnable() {
        let src = r"
/// Codec.
pub enum Tag { Meta = 0 }

fn encode_event(enc: &mut Enc, ev: &TraceEvent) {
    match ev {
        TraceEvent::Stats(s) => enc.byte(Tag::Meta as u8),
    }
}
";
        let toks = lex(src);
        let span = item_tokens(&toks, "encode_event").unwrap();
        assert_eq!(span.first().unwrap().text, "fn");
        assert_eq!(span.last().unwrap().text, "}");
        let body_changed = src.replace("Tag::Meta as u8", "0x7f");
        let a = fnv1a(
            span.iter()
                .flat_map(|t| t.text.bytes().chain(std::iter::once(b' ')))
                .collect::<Vec<u8>>(),
        );
        let toks2 = lex(&body_changed);
        let span2 = item_tokens(&toks2, "encode_event").unwrap();
        let b = fnv1a(
            span2
                .iter()
                .flat_map(|t| t.text.bytes().chain(std::iter::once(b' ')))
                .collect::<Vec<u8>>(),
        );
        assert_ne!(a, b, "an encoder body change must move the hash");
    }

    #[test]
    fn field_rename_moves_the_hash() {
        let renamed = SCHEMA.replace("pub steps: u64", "pub step_count: u64");
        assert_ne!(toks_fp(SCHEMA), toks_fp(&renamed));
    }

    #[test]
    fn serde_attribute_change_moves_the_hash() {
        let retagged = SCHEMA.replace(
            "#[derive(Debug)]\npub enum",
            "#[serde(tag = \"t\")]\npub enum",
        );
        assert_ne!(toks_fp(SCHEMA), toks_fp(&retagged));
    }

    #[test]
    fn fingerprint_file_round_trips() {
        let c = parse_fingerprint_file(
            "# comment\nschema_version = 2\nfingerprint = 0x00ff00ff00ff00ff\n",
        )
        .unwrap();
        assert_eq!(
            c,
            Committed {
                version: 2,
                fingerprint: 0x00ff_00ff_00ff_00ff
            }
        );
        assert!(parse_fingerprint_file("schema_version = 2").is_err());
        assert!(parse_fingerprint_file("nonsense").is_err());
    }
}
