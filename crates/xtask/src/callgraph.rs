//! Workspace-wide call graph over the hand-rolled lexer.
//!
//! The PR 4 lints check annotated function bodies *intraprocedurally*: a
//! `// lint: hot-path` fn may not allocate, but a helper it calls can,
//! unseen. This module upgrades the lint substrate to an
//! *interprocedural* one: a lightweight item parser walks every
//! first-party `.rs` file's token stream, records each `fn` item (name,
//! impl owner, body span, attached `// lint:` markers, test-ness), and
//! extracts its call sites; a resolution pass then links calls to
//! first-party definitions, and a deterministic BFS computes the
//! transitive callee closure of any marker-selected root set.
//!
//! # Resolution rules (and their conservatism policy)
//!
//! No type information exists at the token level, so resolution is by
//! path shape, documented here and in DESIGN.md §14:
//!
//! * **Plain calls** `name(...)` resolve to free fns named `name` in the
//!   caller's crate, else (a `use`-imported cross-crate call) to free fns
//!   with that name in any first-party crate.
//! * **Path calls** `q::name(...)` resolve via the qualifier: a leading
//!   `crate`/`self`/`super` restricts to the caller's crate; a leading
//!   first-party crate ident (`hotpotato_sim::...`) selects that crate;
//!   `Self::name` uses the caller's impl owner; otherwise `q` is matched
//!   as an impl/trait owner (`Simulation::builder`) or a module file stem
//!   (`conflict::resolve_into`) — first in the caller's crate, then
//!   workspace-wide. A qualifier matching nothing first-party (e.g.
//!   `String::from`) stays **unresolved**: explicit foreign paths are
//!   never folded onto same-named local fns.
//! * **Method calls** `.name(...)` resolve to every impl/trait method
//!   named `name` in the caller's crate (receiver types are unknown, so
//!   this over-approximates across owners and never crosses crates).
//! * **Unresolved calls** (std / vendored externals) are skipped: each
//!   lint states what it assumes about them.
//! * `#[cfg(test)] mod` bodies, `tests/`, `examples/` and `benches/`
//!   files never contribute roots or resolution candidates.
//!
//! A fn marked `// lint: trusted(reason)` is a traversal cut: closures
//! do not scan its body or descend into its callees (the escape hatch
//! for code whose safety argument lives outside the token stream).
//! Trusted cuts are counted and surfaced in the lint summary table.

use crate::lexer::{lex, Tok, TokKind};
use crate::Config;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::Path;

/// One parsed function item.
#[derive(Clone, Debug)]
pub struct FnInfo {
    /// Crate ident (`hotpotato_sim`), from the owning `Cargo.toml`
    /// `name` (dashes mapped to underscores), else the directory name.
    pub crate_name: String,
    /// Repo-relative file path (forward slashes).
    pub rel: String,
    /// Index of the file in [`CallGraph::files`].
    pub file: usize,
    /// The fn name.
    pub name: String,
    /// Impl/trait owner type when the fn is a method or trait default.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// `// lint:` markers attached to this fn (`hot-path`, `no-panic`,
    /// `telemetry`, `trusted(...)`).
    pub markers: Vec<String>,
    /// Inside `#[cfg(test)]`/`mod tests`, or a tests/examples/benches
    /// file: excluded from roots and resolution candidates.
    pub in_test: bool,
    /// Body token range `[open+1, close)` in the file's token stream.
    pub body: (usize, usize),
}

impl FnInfo {
    /// Whether this fn carries the given fn-level marker (exact match,
    /// or `name(...)` for parameterized markers like `trusted`).
    pub fn has_marker(&self, name: &str) -> bool {
        self.markers
            .iter()
            .any(|m| m == name || (m.starts_with(name) && m[name.len()..].starts_with('(')))
    }
}

/// One call site extracted from a fn body.
#[derive(Clone, Debug)]
pub struct CallSite {
    /// Path segments (`["conflict", "resolve_into"]`; method calls have
    /// exactly one).
    pub segs: Vec<String>,
    /// `.name(...)` receiver call.
    pub method: bool,
    /// 1-based source line.
    pub line: usize,
}

/// One lexed file.
pub struct FileToks {
    /// Repo-relative path.
    pub rel: String,
    /// Token stream.
    pub toks: Vec<Tok>,
}

/// The workspace call graph: every first-party fn, its call sites, and
/// the indices resolution needs.
pub struct CallGraph {
    /// Lexed files, sorted by path.
    pub files: Vec<FileToks>,
    /// Parsed fns, sorted by (file, line).
    pub fns: Vec<FnInfo>,
    /// Call sites per fn (parallel to `fns`).
    pub calls: Vec<Vec<CallSite>>,
    crates: BTreeSet<String>,
    free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    free_by_module: BTreeMap<(String, String, String), Vec<usize>>,
    methods_by_crate: BTreeMap<(String, String), Vec<usize>>,
    methods_by_owner: BTreeMap<(String, String, String), Vec<usize>>,
}

/// Keywords that can never be a call-position identifier.
const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "in", "mut", "ref", "move", "as",
    "use", "pub", "impl", "where", "unsafe", "dyn", "break", "continue", "else", "struct", "enum",
    "union", "trait", "type", "const", "static", "mod", "true", "false", "async", "await",
];

impl CallGraph {
    /// An empty graph, to be populated with [`CallGraph::add_file`] and
    /// finalized with [`CallGraph::index`] (unit tests build miniature
    /// graphs from source strings this way).
    pub fn empty() -> CallGraph {
        CallGraph {
            files: Vec::new(),
            fns: Vec::new(),
            calls: Vec::new(),
            crates: BTreeSet::new(),
            free_by_crate: BTreeMap::new(),
            free_by_module: BTreeMap::new(),
            methods_by_crate: BTreeMap::new(),
            methods_by_owner: BTreeMap::new(),
        }
    }

    /// Parses every first-party `.rs` file under `cfg.root` and builds
    /// the graph. Deterministic: files are walked sorted, fns recorded
    /// in source order.
    pub fn build(cfg: &Config) -> CallGraph {
        let mut g = CallGraph::empty();
        let mut crate_names: BTreeMap<String, String> = BTreeMap::new();
        for path in crate::workspace_rs_files(cfg) {
            let Ok(src) = std::fs::read_to_string(&path) else {
                continue;
            };
            let rel = cfg.rel(&path);
            let crate_name = crate_name_for(cfg, &rel, &mut crate_names);
            g.add_file(rel, crate_name, &src);
        }
        g.index();
        g
    }

    /// Lexes and parses one file into the graph (split out so unit
    /// tests can build small graphs from source strings).
    pub fn add_file(&mut self, rel: String, crate_name: String, src: &str) {
        let toks = lex(src);
        let file_idx = self.files.len();
        let in_test_file = {
            let mut parts = rel.split('/');
            let top = parts.next().unwrap_or("");
            let nested = parts.nth(1).unwrap_or(""); // crates/<c>/<dir>
            matches!(top, "tests" | "examples" | "benches")
                || (top == "crates" && matches!(nested, "tests" | "examples" | "benches"))
        };
        self.crates.insert(crate_name.clone());
        parse_items(
            &toks,
            &rel,
            &crate_name,
            file_idx,
            in_test_file,
            &mut self.fns,
        );
        self.files.push(FileToks { rel, toks });
    }

    /// Builds the resolution indices and extracts call sites. Called
    /// once, after the last [`CallGraph::add_file`].
    pub fn index(&mut self) {
        for (id, f) in self.fns.iter().enumerate() {
            if f.in_test {
                continue; // test code is never a resolution target
            }
            let module = module_stem(&f.rel);
            match &f.owner {
                Some(owner) => {
                    self.methods_by_crate
                        .entry((f.crate_name.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    self.methods_by_owner
                        .entry((f.crate_name.clone(), owner.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
                None => {
                    self.free_by_crate
                        .entry((f.crate_name.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                    self.free_by_module
                        .entry((f.crate_name.clone(), module.clone(), f.name.clone()))
                        .or_default()
                        .push(id);
                }
            }
        }
        self.calls = self
            .fns
            .iter()
            .map(|f| extract_calls(&self.files[f.file].toks, f.body))
            .collect();
    }

    /// Resolves one call site from `caller` to candidate fn ids
    /// (sorted, deduped, test fns excluded — see the module docs for
    /// the rules).
    pub fn resolve(&self, caller: usize, call: &CallSite) -> Vec<usize> {
        let me = &self.fns[caller];
        let mut out: Vec<usize> = if call.method {
            self.lookup(&self.methods_by_crate, &me.crate_name, &call.segs[0])
        } else if call.segs.len() == 1 {
            let name = &call.segs[0];
            let same = self.lookup(&self.free_by_crate, &me.crate_name, name);
            if same.is_empty() {
                self.free_by_crate
                    .iter()
                    .filter(|((_, n), _)| n == name)
                    .flat_map(|(_, ids)| ids.iter().copied())
                    .collect()
            } else {
                same
            }
        } else {
            self.resolve_path(me, &call.segs)
        };
        out.sort_unstable();
        out.dedup();
        out
    }

    fn lookup(&self, map: &BTreeMap<(String, String), Vec<usize>>, a: &str, b: &str) -> Vec<usize> {
        map.get(&(a.to_string(), b.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    fn resolve_path(&self, me: &FnInfo, segs: &[String]) -> Vec<usize> {
        let name = segs.last().expect("path has segments").clone();
        // `Self::f` — the caller's own impl owner.
        if segs.len() == 2 && segs[0] == "Self" {
            if let Some(owner) = &me.owner {
                return self.owner_lookup(&me.crate_name, owner, &name);
            }
            return Vec::new();
        }
        // `crate::`/`self::`/`super::` restrict to the caller's crate.
        let (segs, crate_hint): (&[String], Option<&str>) =
            if matches!(segs[0].as_str(), "crate" | "self" | "super") {
                (&segs[1..], Some(me.crate_name.as_str()))
            } else if self.crates.contains(&segs[0]) {
                (&segs[1..], Some(segs[0].as_str()))
            } else {
                (segs, None)
            };
        if segs.len() == 1 {
            // The whole path was `crate::f` / `some_crate::f`.
            let c = crate_hint.unwrap_or(&me.crate_name);
            return self.lookup(&self.free_by_crate, c, &name);
        }
        if segs.is_empty() {
            return Vec::new();
        }
        let qual = &segs[segs.len() - 2];
        match crate_hint {
            Some(c) => {
                // Qualified inside a known crate: owner type or module.
                let mut ids = self.owner_lookup(c, qual, &name);
                if ids.is_empty() {
                    ids = self
                        .free_by_module
                        .get(&(c.to_string(), qual.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                ids
            }
            None => {
                // Bare `Qual::name`: try the caller's crate, then the
                // workspace; an unmatched qualifier is foreign — never
                // fall back to bare-name matching.
                let mut ids = self.owner_lookup(&me.crate_name, qual, &name);
                if ids.is_empty() {
                    ids = self
                        .free_by_module
                        .get(&(me.crate_name.clone(), qual.clone(), name.clone()))
                        .cloned()
                        .unwrap_or_default();
                }
                if ids.is_empty() {
                    ids = self
                        .methods_by_owner
                        .iter()
                        .filter(|((_, o, n), _)| o == qual && *n == name)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                }
                if ids.is_empty() {
                    ids = self
                        .free_by_module
                        .iter()
                        .filter(|((_, m, n), _)| m == qual && *n == name)
                        .flat_map(|(_, v)| v.iter().copied())
                        .collect();
                }
                ids
            }
        }
    }

    fn owner_lookup(&self, c: &str, owner: &str, name: &str) -> Vec<usize> {
        self.methods_by_owner
            .get(&(c.to_string(), owner.to_string(), name.to_string()))
            .cloned()
            .unwrap_or_default()
    }

    /// BFS over the graph from `roots`: every reachable fn id mapped to
    /// the fn it was first reached from (`None` for roots themselves).
    /// Fns marked `trusted` are not descended into (their ids are
    /// returned in the second value, for the summary table).
    pub fn reachable(&self, roots: &[usize]) -> (BTreeMap<usize, Option<usize>>, usize) {
        self.reachable_cut(roots, &["trusted"])
    }

    /// [`CallGraph::reachable`] with additional lint-specific traversal
    /// cut markers (e.g. the no-panic lint also cuts at
    /// `panics-by-design` fns, without hiding them from other closures).
    pub fn reachable_cut(
        &self,
        roots: &[usize],
        cut_markers: &[&str],
    ) -> (BTreeMap<usize, Option<usize>>, usize) {
        let mut parent: BTreeMap<usize, Option<usize>> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut trusted_cuts = 0usize;
        let mut roots = roots.to_vec();
        roots.sort_unstable();
        for r in roots {
            if parent.insert(r, None).is_none() {
                queue.push_back(r);
            }
        }
        while let Some(id) = queue.pop_front() {
            if cut_markers.iter().any(|m| self.fns[id].has_marker(m)) {
                trusted_cuts += 1;
                continue;
            }
            for call in &self.calls[id] {
                for callee in self.resolve(id, call) {
                    if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(callee) {
                        e.insert(Some(id));
                        queue.push_back(callee);
                    }
                }
            }
        }
        (parent, trusted_cuts)
    }

    /// The `root → … → fn` chain for a reached fn, as fn names joined
    /// with arrows (used in closure diagnostics).
    pub fn chain(&self, parent: &BTreeMap<usize, Option<usize>>, id: usize) -> String {
        let mut names = vec![self.fns[id].name.clone()];
        let mut cur = id;
        while let Some(Some(p)) = parent.get(&cur) {
            names.push(self.fns[*p].name.clone());
            cur = *p;
        }
        names.reverse();
        names.join(" → ")
    }

    /// Ids of non-test fns carrying `marker`, in (file, line) order.
    pub fn marked(&self, marker: &str) -> Vec<usize> {
        (0..self.fns.len())
            .filter(|&i| !self.fns[i].in_test && self.fns[i].has_marker(marker))
            .collect()
    }
}

/// Module stem of a file path: `crates/x/src/conflict.rs` → `conflict`,
/// `.../mod.rs` and `lib.rs`/`main.rs` keep their stem (never matched as
/// a qualifier in practice).
fn module_stem(rel: &str) -> String {
    Path::new(rel)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_default()
}

/// Crate ident for a repo-relative path, reading `crates/<dir>/Cargo.toml`
/// `name = "…"` when present (cached), else the directory name with
/// dashes mapped to underscores; root `src/` files belong to the root
/// package.
fn crate_name_for(cfg: &Config, rel: &str, cache: &mut BTreeMap<String, String>) -> String {
    let dir = match rel.strip_prefix("crates/") {
        Some(rest) => format!("crates/{}", rest.split('/').next().unwrap_or("")),
        None => String::new(), // root package
    };
    if let Some(name) = cache.get(&dir) {
        return name.clone();
    }
    let manifest = if dir.is_empty() {
        cfg.root.join("Cargo.toml")
    } else {
        cfg.root.join(&dir).join("Cargo.toml")
    };
    let fallback = if dir.is_empty() {
        "crate_root".to_string()
    } else {
        dir.rsplit('/').next().unwrap_or("").replace('-', "_")
    };
    let name = std::fs::read_to_string(&manifest)
        .ok()
        .and_then(|s| manifest_name(&s))
        .unwrap_or(fallback)
        .replace('-', "_");
    cache.insert(dir, name.clone());
    name
}

/// First `name = "…"` in a manifest (enough for the workspace's flat
/// `[package]`-first manifests).
fn manifest_name(toml: &str) -> Option<String> {
    toml.lines().find_map(|l| {
        let l = l.trim();
        l.strip_prefix("name")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(|r| r.trim().trim_matches('"').to_string())
    })
}

/// Walks a token stream and records every `fn` item with its context.
fn parse_items(
    toks: &[Tok],
    rel: &str,
    crate_name: &str,
    file_idx: usize,
    in_test_file: bool,
    out: &mut Vec<FnInfo>,
) {
    let mut depth = 0usize;
    // (owner, depth at which the impl/trait body opened)
    let mut impl_stack: Vec<(String, usize)> = Vec::new();
    // depth at which a #[cfg(test)] / `mod tests` body opened
    let mut test_stack: Vec<usize> = Vec::new();
    let mut pending_markers: Vec<String> = Vec::new();
    let mut cfg_test_attr = false;

    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::LineComment => {
                let text = t.text.trim_start_matches('/').trim();
                if let Some(marker) = text.strip_prefix("lint: ") {
                    let marker = marker.trim();
                    // Site-level escapes attach to lines, not fns.
                    if !marker.starts_with("allow-panic") {
                        pending_markers.push(marker.to_string());
                    }
                }
                i += 1;
            }
            TokKind::Punct if t.is_punct('#') => {
                // Attribute: scan the balanced [...] and remember
                // whether it was #[cfg(test)].
                let mut j = i + 1;
                if j < toks.len() && toks[j].is_punct('[') {
                    let mut level = 1;
                    let mut has_cfg = false;
                    let mut has_test = false;
                    j += 1;
                    while j < toks.len() && level > 0 {
                        if toks[j].is_punct('[') {
                            level += 1;
                        } else if toks[j].is_punct(']') {
                            level -= 1;
                        } else if toks[j].is_ident("cfg") {
                            has_cfg = true;
                        } else if toks[j].is_ident("test") {
                            has_test = true;
                        }
                        j += 1;
                    }
                    cfg_test_attr = has_cfg && has_test;
                    i = j;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident if t.is_ident("impl") || t.is_ident("trait") => {
                let (owner, open) = impl_header_owner(toks, i + 1);
                match open {
                    Some(open_idx) => {
                        depth += 1;
                        impl_stack.push((owner, depth));
                        i = open_idx + 1;
                    }
                    None => i += 1,
                }
                cfg_test_attr = false;
            }
            TokKind::Ident if t.is_ident("mod") => {
                let name = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident);
                let brace = toks.get(i + 2).is_some_and(|t| t.is_punct('{'));
                if brace {
                    depth += 1;
                    if cfg_test_attr || name.is_some_and(|t| t.text == "tests") {
                        test_stack.push(depth);
                    }
                    i += 3;
                } else {
                    i += 1; // `mod name;` — out-of-line
                }
                cfg_test_attr = false;
            }
            TokKind::Ident if t.is_ident("fn") => {
                cfg_test_attr = false;
                let Some(name_tok) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
                    i += 1; // `fn(` pointer type
                    continue;
                };
                // Find the body `{` (or `;` for a bodyless trait decl).
                let mut j = i + 2;
                let mut open = None;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        open = Some(j);
                        break;
                    }
                    if toks[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                let Some(open) = open else {
                    pending_markers.clear();
                    i = j + 1;
                    continue;
                };
                let mut level = 1usize;
                let mut close = open + 1;
                while close < toks.len() && level > 0 {
                    if toks[close].is_punct('{') {
                        level += 1;
                    } else if toks[close].is_punct('}') {
                        level -= 1;
                    }
                    close += 1;
                }
                let body_end = close.saturating_sub(1);
                out.push(FnInfo {
                    crate_name: crate_name.to_string(),
                    rel: rel.to_string(),
                    file: file_idx,
                    name: name_tok.text.clone(),
                    owner: impl_stack.last().map(|(o, _)| o.clone()),
                    line: t.line,
                    markers: std::mem::take(&mut pending_markers),
                    in_test: in_test_file || !test_stack.is_empty(),
                    body: (open + 1, body_end),
                });
                // Continue scanning *inside* the body too (nested fns),
                // so step only past the signature.
                depth += 1;
                i = open + 1;
            }
            TokKind::Punct if t.is_punct('{') => {
                depth += 1;
                i += 1;
                cfg_test_attr = false;
            }
            TokKind::Punct if t.is_punct('}') => {
                while impl_stack.last().is_some_and(|&(_, d)| d == depth) {
                    impl_stack.pop();
                }
                while test_stack.last().is_some_and(|&d| d == depth) {
                    test_stack.pop();
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            _ => {
                if !t.is_comment() {
                    cfg_test_attr = false;
                }
                i += 1;
            }
        }
    }
}

/// Parses an `impl`/`trait` header starting after the keyword: returns
/// the owner type name (last path segment of the implemented-on type;
/// for `impl Trait for Type` the `Type`) and the index of the opening
/// `{`, or `None` when the header never opens a body (e.g. `trait X;`
/// is not valid Rust, but be tolerant).
fn impl_header_owner(toks: &[Tok], mut i: usize) -> (String, Option<usize>) {
    let mut owner = String::new();
    let mut after_for = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            return (owner, Some(i));
        }
        if t.is_punct(';') {
            return (owner, None);
        }
        if t.is_punct('<') {
            // Skip balanced generics, tolerating `->` arrows inside.
            let mut level = 1;
            i += 1;
            while i < toks.len() && level > 0 {
                if toks[i].is_punct('<') {
                    level += 1;
                } else if toks[i].is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
                    level -= 1;
                }
                i += 1;
            }
            continue;
        }
        if t.is_ident("for") {
            after_for = true;
            owner.clear();
            i += 1;
            continue;
        }
        if t.is_ident("where") {
            // Owner is settled; scan on to the `{`.
            after_for = false;
        }
        if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("where") {
            // Keep overwriting: the last path segment wins
            // (`leveled_net::NodeId` → `NodeId`).
            let _ = after_for;
            owner = t.text.clone();
        }
        i += 1;
    }
    (owner, None)
}

/// Extracts the call sites in a body token range.
fn extract_calls(toks: &[Tok], body: (usize, usize)) -> Vec<CallSite> {
    let code: Vec<&Tok> = toks[body.0.min(toks.len())..body.1.min(toks.len())]
        .iter()
        .filter(|t| !t.is_comment())
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < code.len() {
        // Method call: `. name (` or `. name :: < … > (`.
        if code[i].is_punct('.') {
            if let Some(name) = code.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                let mut j = i + 2;
                if turbofish(&code, &mut j) && code.get(j).is_some_and(|t| t.is_punct('(')) {
                    out.push(CallSite {
                        segs: vec![name.text.clone()],
                        method: true,
                        line: name.line,
                    });
                }
                i += 2;
                continue;
            }
            i += 1;
            continue;
        }
        if code[i].kind == TokKind::Ident {
            // Skip `fn name` definitions nested in the body.
            if code[i].is_ident("fn") {
                i += 2;
                continue;
            }
            if KEYWORDS.contains(&code[i].text.as_str()) {
                i += 1;
                continue;
            }
            // Collect a `::`-separated path.
            let start_line = code[i].line;
            let mut segs = vec![code[i].text.clone()];
            let mut j = i + 1;
            loop {
                if code.get(j).is_some_and(|t| t.is_punct(':'))
                    && code.get(j + 1).is_some_and(|t| t.is_punct(':'))
                {
                    let mut k = j + 2;
                    if code.get(k).is_some_and(|t| t.kind == TokKind::Ident) {
                        segs.push(code[k].text.clone());
                        j = k + 1;
                        continue;
                    }
                    if turbofish(&code, &mut k) {
                        j = k;
                        continue;
                    }
                }
                break;
            }
            let is_macro = code.get(j).is_some_and(|t| t.is_punct('!'));
            let is_call = code.get(j).is_some_and(|t| t.is_punct('('));
            if is_call && !is_macro {
                out.push(CallSite {
                    segs,
                    method: false,
                    line: start_line,
                });
            }
            i = j.max(i + 1);
            continue;
        }
        i += 1;
    }
    out
}

/// If `code[*j]` opens a turbofish `< … >`, advances `*j` past it and
/// returns true; a non-`<` position is left unchanged (also true — the
/// caller treats "no turbofish" as fine).
fn turbofish(code: &[&Tok], j: &mut usize) -> bool {
    if !code.get(*j).is_some_and(|t| t.is_punct('<')) {
        return true;
    }
    let mut level = 1;
    let mut k = *j + 1;
    while k < code.len() && level > 0 {
        if code[k].is_punct('<') {
            level += 1;
        } else if code[k].is_punct('>') && !code[k - 1].is_punct('-') {
            level -= 1;
        }
        k += 1;
    }
    *j = k;
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph(src: &str) -> CallGraph {
        let mut g = CallGraph::empty();
        g.add_file("crates/demo/src/lib.rs".into(), "demo".into(), src);
        g.index();
        g
    }

    fn fn_named<'g>(g: &'g CallGraph, name: &str) -> &'g FnInfo {
        g.fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn items_methods_and_markers_are_parsed() {
        let g = graph(
            "// lint: hot-path\nfn root() { helper(); }\nfn helper() {}\n\
             struct S;\nimpl S {\n    // lint: telemetry\n    fn m(&self) { helper(); }\n}\n\
             #[cfg(test)]\nmod tests {\n    fn t() { helper(); }\n}\n",
        );
        assert_eq!(g.fns.len(), 4);
        assert!(fn_named(&g, "root").has_marker("hot-path"));
        assert_eq!(fn_named(&g, "m").owner.as_deref(), Some("S"));
        assert!(fn_named(&g, "m").has_marker("telemetry"));
        assert!(fn_named(&g, "t").in_test);
    }

    #[test]
    fn plain_calls_resolve_same_crate_and_bfs_reaches() {
        let g = graph(
            "// lint: hot-path\nfn root() { helper(); }\nfn helper() { inner(); }\nfn inner() {}\n",
        );
        let roots = g.marked("hot-path");
        let (reach, cuts) = g.reachable(&roots);
        assert_eq!(cuts, 0);
        let names: Vec<&str> = reach.keys().map(|&id| g.fns[id].name.as_str()).collect();
        assert_eq!(names, ["root", "helper", "inner"]);
        let inner = g.fns.iter().position(|f| f.name == "inner").unwrap();
        assert_eq!(g.chain(&reach, inner), "root → helper → inner");
    }

    #[test]
    fn method_calls_resolve_within_crate_only() {
        let g = graph(
            "struct S;\nimpl S { fn work(&self) {} }\nfn driver(s: &S) { s.work(); s.push(1); }\n",
        );
        let driver = g.fns.iter().position(|f| f.name == "driver").unwrap();
        let resolved: Vec<&str> = g.calls[driver]
            .iter()
            .flat_map(|c| g.resolve(driver, c))
            .map(|id| g.fns[id].name.as_str())
            .collect();
        // `.work()` resolves to S::work; `.push()` matches nothing
        // first-party and stays unresolved.
        assert_eq!(resolved, ["work"]);
    }

    #[test]
    fn foreign_paths_stay_unresolved() {
        let g = graph("fn from() {}\nfn f() { let _ = String::from(\"x\"); }\n");
        let f = g.fns.iter().position(|x| x.name == "f").unwrap();
        let resolved: Vec<usize> = g.calls[f].iter().flat_map(|c| g.resolve(f, c)).collect();
        assert!(
            resolved.is_empty(),
            "String::from must not fold onto fn from"
        );
    }

    #[test]
    fn self_and_owner_paths_resolve() {
        let g = graph(
            "struct S;\nimpl S {\n    fn a(&self) { Self::b(); S::c(); }\n    fn b() {}\n    fn c() {}\n}\n",
        );
        let a = g.fns.iter().position(|x| x.name == "a").unwrap();
        let mut resolved: Vec<&str> = g.calls[a]
            .iter()
            .flat_map(|c| g.resolve(a, c))
            .map(|id| g.fns[id].name.as_str())
            .collect();
        resolved.sort_unstable();
        assert_eq!(resolved, ["b", "c"]);
    }

    #[test]
    fn trusted_marker_cuts_traversal() {
        let g = graph(
            "// lint: hot-path\nfn root() { mid(); }\n// lint: trusted(audited externally)\nfn mid() { leaf(); }\nfn leaf() {}\n",
        );
        let (reach, cuts) = g.reachable(&g.marked("hot-path"));
        assert_eq!(cuts, 1);
        assert!(!reach.keys().any(|&id| g.fns[id].name == "leaf"));
    }

    #[test]
    fn turbofish_and_macros_are_handled() {
        let g = graph("fn f() { g::<u32>(); vec![1]; h(); }\nfn g() {}\nfn h() {}\n");
        let f = g.fns.iter().position(|x| x.name == "f").unwrap();
        let mut resolved: Vec<&str> = g.calls[f]
            .iter()
            .flat_map(|c| g.resolve(f, c))
            .map(|id| g.fns[id].name.as_str())
            .collect();
        resolved.sort_unstable();
        assert_eq!(resolved, ["g", "h"], "macro `vec!` is not a call edge");
    }
}
