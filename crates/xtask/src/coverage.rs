//! Invariant-coverage cross-check.
//!
//! `crates/core/src/invariants.rs` enumerates the bufferless invariants
//! the paper's correctness argument rests on (`BUFFERLESS_INVARIANTS`).
//! The offline trace verifier in `crates/trace/src/verify.rs` tags the
//! code enforcing each one with a `// check: <id>` comment. This lint
//! joins the two:
//!
//! * a registered invariant with no matching tag means the verifier
//!   silently stopped checking something the theory requires — error at
//!   the registry entry's line;
//! * a tag whose id is not registered is either a typo or a check the
//!   registry does not know about — error at the tag's line.
//!
//! Both directions fail, so registry and verifier can only move together.

use crate::lexer::{lex, TokKind};
use crate::{Config, Diagnostic};

/// Runs the cross-check.
pub fn check(cfg: &Config) -> Vec<Diagnostic> {
    let rel_inv = cfg.rel(&cfg.invariants_rs());
    let rel_ver = cfg.rel(&cfg.verify_rs());
    let inv_src = match std::fs::read_to_string(cfg.invariants_rs()) {
        Ok(s) => s,
        Err(e) => {
            return vec![read_err(&rel_inv, &e)];
        }
    };
    let ver_src = match std::fs::read_to_string(cfg.verify_rs()) {
        Ok(s) => s,
        Err(e) => {
            return vec![read_err(&rel_ver, &e)];
        }
    };

    let registry = registry_ids(&inv_src);
    if registry.is_empty() {
        return vec![Diagnostic {
            file: rel_inv,
            line: 0,
            lint: "invariant-coverage",
            msg: "no `BUFFERLESS_INVARIANTS` registry entries found".into(),
        }];
    }
    let tags = check_tags(&ver_src);

    let mut diags = Vec::new();
    for (id, line) in &registry {
        if !tags.iter().any(|(t, _)| t == id) {
            diags.push(Diagnostic {
                file: rel_inv.clone(),
                line: *line,
                lint: "invariant-coverage",
                msg: format!(
                    "invariant `{id}` has no `// check: {id}` tag in {rel_ver}; \
                     the offline verifier does not cover it"
                ),
            });
        }
    }
    for (tag, line) in &tags {
        if !registry.iter().any(|(id, _)| id == tag) {
            diags.push(Diagnostic {
                file: rel_ver.clone(),
                line: *line,
                lint: "invariant-coverage",
                msg: format!(
                    "`// check: {tag}` does not match any invariant in \
                     BUFFERLESS_INVARIANTS ({rel_inv})"
                ),
            });
        }
    }
    diags
}

fn read_err(rel: &str, e: &std::io::Error) -> Diagnostic {
    Diagnostic {
        file: rel.to_string(),
        line: 0,
        lint: "invariant-coverage",
        msg: format!("cannot read file: {e}"),
    }
}

/// Extracts `(id, line)` pairs from the `BUFFERLESS_INVARIANTS` array:
/// the first string literal of each tuple is the id.
pub fn registry_ids(src: &str) -> Vec<(String, usize)> {
    let toks = lex(src);
    let code: Vec<_> = toks.iter().filter(|t| !t.is_comment()).collect();
    let Some(name) = code
        .iter()
        .position(|t| t.is_ident("BUFFERLESS_INVARIANTS"))
    else {
        return Vec::new();
    };
    // Skip the type annotation (which also contains brackets): the array
    // literal starts at the first `[` after the `=`.
    let Some(eq) = (name..code.len()).find(|&i| code[i].is_punct('=')) else {
        return Vec::new();
    };
    let Some(open) = (eq..code.len()).find(|&i| code[i].is_punct('[')) else {
        return Vec::new();
    };

    let mut ids = Vec::new();
    let mut depth = 1usize;
    let mut i = open + 1;
    let mut tuple_wants_id = false;
    while i < code.len() && depth > 0 {
        let t = code[i];
        if t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct('(') {
            depth += 1;
            tuple_wants_id = depth == 2;
        } else if t.is_punct(')') {
            depth -= 1;
        } else if t.kind == TokKind::Str && tuple_wants_id {
            ids.push((unquote(&t.text), t.line));
            tuple_wants_id = false;
        }
        i += 1;
    }
    ids
}

/// Extracts `(id, line)` pairs from `// check: <id>` comment tags. The
/// id is the first whitespace-delimited word after the colon, so tags
/// may carry trailing prose.
pub fn check_tags(src: &str) -> Vec<(String, usize)> {
    let mut tags = Vec::new();
    for t in lex(src) {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let body = t.text.trim_start_matches('/').trim_start();
        if let Some(rest) = body.strip_prefix("check:") {
            if let Some(id) = rest.split_whitespace().next() {
                tags.push((id.to_string(), t.line));
            }
        }
    }
    tags
}

fn unquote(s: &str) -> String {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    const REGISTRY: &str = r#"
pub const BUFFERLESS_INVARIANTS: &[(&str, &str)] = &[
    ("slot-capacity", "one packet per (edge, dir) slot"),
    ("no-rest", "every in-flight packet moves"),
];
"#;

    #[test]
    fn registry_ids_take_first_string_of_each_tuple() {
        assert_eq!(
            registry_ids(REGISTRY),
            [("slot-capacity".to_string(), 3), ("no-rest".to_string(), 4)]
        );
    }

    #[test]
    fn tags_parse_first_word_and_allow_prose() {
        let src = "fn f() {\n    // check: no-rest — every packet moves\n    // check:slot-capacity\n    // checked: not-a-tag\n}\n";
        assert_eq!(
            check_tags(src),
            [("no-rest".to_string(), 2), ("slot-capacity".to_string(), 3)]
        );
    }

    #[test]
    fn the_real_registry_and_verifier_agree() {
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let diags = check(&Config::new(root));
        assert!(diags.is_empty(), "{diags:#?}");
    }
}
