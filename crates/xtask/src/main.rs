//! `cargo xtask` — workspace static-analysis driver.
//!
//! Subcommands:
//!
//! * `cargo xtask lint` — run the repo lints (hot-path allocation and
//!   its interprocedural closure, panic-freedom, determinism,
//!   schema-drift fingerprint, invariant coverage) over the workspace;
//!   prints a per-lint summary table (diagnostic count, allow-panic
//!   sites, wall time) and exits nonzero on any diagnostic.
//! * `cargo xtask lint --bless` — re-commit the schema fingerprint
//!   (refused when the schema drifted without a `SCHEMA_VERSION` bump),
//!   then lint.
//! * `cargo xtask fixtures` — run every lint against its seeded-violation
//!   fixture under `crates/xtask/fixtures/` and assert the exact
//!   diagnostics (file, line and message) each violation must produce.
//!   This proves the lints actually fire; CI runs it next to `lint`.

use std::path::{Path, PathBuf};
use std::time::Instant;
use xtask::callgraph::CallGraph;
use xtask::{closure, coverage, determinism, hotpath, nopanic, schemafp, Config, Diagnostic};

fn main() {
    std::process::exit(run());
}

fn run() -> i32 {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&root, args.iter().any(|a| a == "--bless")),
        Some("fixtures") => fixtures(&root),
        _ => {
            eprintln!("usage: cargo xtask <lint [--bless] | fixtures>");
            2
        }
    }
}

/// The workspace root, resolved from this crate's manifest directory so
/// the tool works regardless of the invocation cwd.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// One row of the per-lint summary table.
struct LintRow {
    name: &'static str,
    diags: Vec<Diagnostic>,
    /// `allow-panic(reason)` sites suppressed (no-panic only).
    allowed: Option<usize>,
    wall_ms: u128,
}

/// Times one lint pass into a summary row.
fn timed(name: &'static str, f: impl FnOnce() -> Vec<Diagnostic>) -> LintRow {
    let t0 = Instant::now();
    let diags = f();
    LintRow {
        name,
        diags,
        allowed: None,
        wall_ms: t0.elapsed().as_millis(),
    }
}

/// Runs all six lints over `root`. The call graph is built once and
/// shared by the three interprocedural lints (its construction time is
/// charged to the `hot-path-closure` row).
fn run_all(cfg: &Config) -> Vec<LintRow> {
    let mut rows = Vec::new();
    rows.push(timed("hot-path-alloc", || hotpath::check(cfg)));
    let t0 = Instant::now();
    let graph = CallGraph::build(cfg);
    rows.push(LintRow {
        name: "hot-path-closure",
        diags: closure::check_graph(&graph),
        allowed: None,
        wall_ms: t0.elapsed().as_millis(),
    });
    let t0 = Instant::now();
    let (diags, allowed) = nopanic::check_graph(&graph);
    rows.push(LintRow {
        name: "no-panic",
        diags,
        allowed: Some(allowed),
        wall_ms: t0.elapsed().as_millis(),
    });
    let t0 = Instant::now();
    rows.push(LintRow {
        name: "determinism",
        diags: determinism::check_graph(&graph),
        allowed: None,
        wall_ms: t0.elapsed().as_millis(),
    });
    rows.push(timed("schema-drift", || schemafp::check(cfg)));
    rows.push(timed("invariant-coverage", || coverage::check(cfg)));
    rows
}

/// Prints the per-lint summary table (CI greps the `lint-time` lines to
/// watch for lint cost regressions).
fn summary(rows: &[LintRow]) {
    println!(
        "{:<20} {:>11} {:>8} {:>8}",
        "lint", "diagnostics", "allowed", "wall-ms"
    );
    for r in rows {
        let allowed = r.allowed.map_or("-".to_string(), |n| n.to_string());
        println!(
            "{:<20} {:>11} {:>8} {:>8}",
            r.name,
            r.diags.len(),
            allowed,
            r.wall_ms
        );
        println!("lint-time {} {}ms", r.name, r.wall_ms);
    }
}

fn lint(root: &Path, bless: bool) -> i32 {
    let cfg = Config::new(root);
    if bless {
        if let Err(d) = schemafp::bless(&cfg) {
            eprintln!("{d}");
            eprintln!("xtask lint: refusing to bless");
            return 1;
        }
        println!("blessed {}", cfg.rel(&cfg.fingerprint_file()));
    }
    let rows = run_all(&cfg);
    let mut total = 0usize;
    for r in &rows {
        for d in &r.diags {
            eprintln!("{d}");
        }
        total += r.diags.len();
    }
    summary(&rows);
    if total == 0 {
        println!(
            "xtask lint: clean (hot-path-alloc, hot-path-closure, no-panic, \
             determinism, schema-drift, invariant-coverage)"
        );
        0
    } else {
        eprintln!("xtask lint: {total} error(s)");
        1
    }
}

/// Maps a fixture directory name to the single lint it seeds a
/// violation for (a fixture tree only carries that lint's input files).
fn fixture_lint(name: &str) -> Option<fn(&Config) -> Vec<Diagnostic>> {
    if name.starts_with("hotpath_closure") {
        Some(closure::check)
    } else if name.starts_with("hotpath") {
        Some(hotpath::check)
    } else if name.starts_with("nopanic") {
        Some(nopanic::check)
    } else if name.starts_with("determinism") {
        Some(determinism::check)
    } else if name.starts_with("schema") {
        Some(schemafp::check)
    } else if name.starts_with("coverage") {
        Some(coverage::check)
    } else {
        None
    }
}

/// Runs each lint against its fixture tree and compares the produced
/// diagnostics, line by line, against the fixture's `expected.txt`.
fn fixtures(root: &Path) -> i32 {
    let fixtures_dir = root.join("crates/xtask/fixtures");
    let mut names: Vec<PathBuf> = match std::fs::read_dir(&fixtures_dir) {
        Ok(rd) => rd
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect(),
        Err(e) => {
            eprintln!("cannot read {}: {e}", fixtures_dir.display());
            return 1;
        }
    };
    names.sort();
    if names.is_empty() {
        eprintln!("no fixtures found under {}", fixtures_dir.display());
        return 1;
    }

    let mut failed = 0usize;
    for fixture in &names {
        let name = fixture.file_name().unwrap_or_default().to_string_lossy();
        let expected_path = fixture.join("expected.txt");
        let expected = match std::fs::read_to_string(&expected_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fixture {name}: cannot read expected.txt: {e}");
                failed += 1;
                continue;
            }
        };
        let expected: Vec<&str> = expected.lines().filter(|l| !l.is_empty()).collect();
        let Some(lint) = fixture_lint(&name) else {
            eprintln!(
                "fixture {name}: name must start with hotpath/hotpath_closure/\
                 nopanic/determinism/schema/coverage to select the lint under test"
            );
            failed += 1;
            continue;
        };
        let got: Vec<String> = lint(&Config::new(fixture))
            .iter()
            .map(ToString::to_string)
            .collect();

        if expected.is_empty() {
            eprintln!("fixture {name}: expected.txt must list at least one diagnostic");
            failed += 1;
        } else if got != expected {
            eprintln!("fixture {name}: diagnostics mismatch");
            eprintln!("  expected:");
            for l in &expected {
                eprintln!("    {l}");
            }
            eprintln!("  got:");
            for l in &got {
                eprintln!("    {l}");
            }
            failed += 1;
        } else {
            println!("fixture {name}: OK ({} diagnostic(s) fired)", got.len());
        }
    }
    if failed == 0 {
        println!(
            "xtask fixtures: all {} fixture(s) fire as expected",
            names.len()
        );
        0
    } else {
        eprintln!("xtask fixtures: {failed} fixture(s) failed");
        1
    }
}
