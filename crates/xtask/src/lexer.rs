//! A minimal Rust tokenizer, sufficient for the repo lints.
//!
//! The lints need to (a) find marker comments (`// lint: hot-path`,
//! `// check: <id>`), (b) match token shapes (`Vec :: new`, `. clone (`),
//! and (c) hash normalized item bodies. None of that needs a real parse
//! tree — but it does need strings, char literals, raw strings, lifetimes
//! and nested block comments handled exactly, so a naive substring search
//! does not misfire inside a string literal or a doc comment.
//!
//! The token text is stored owned; files under lint are small (≤ a few
//! thousand lines), so simplicity beats zero-copy here.

/// What a token is, at the granularity the lints care about.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `Vec`, `clone`, ...).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (including suffixes: `0u32`, `1_000`, `2.5`).
    Number,
    /// String literal of any flavor (`"..."`, `r#"..."#`, `b"..."`).
    /// `text` keeps the raw source form, quotes included.
    Str,
    /// Char or byte literal (`'x'`, `b'\n'`).
    Char,
    /// A single punctuation character (`::` is two `:` tokens).
    Punct,
    /// `// ...` comment, text includes the slashes (doc comments too).
    LineComment,
    /// `/* ... */` comment (nested), text includes the delimiters.
    BlockComment,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Raw source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
}

impl Tok {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this is a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// Tokenizes `src`. Unterminated constructs (string, block comment) are
/// tolerated: the remainder of the file becomes one token, which is good
/// enough for lints that then simply see no further matches.
pub fn lex(src: &str) -> Vec<Tok> {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line = 1;
    let n = b.len();

    // Advances `line` for every newline in b[from..to].
    let count_lines = |from: usize, to: usize, b: &[char]| -> usize {
        b[from..to].iter().filter(|&&c| c == '\n').count()
    };

    while i < n {
        let c = b[i];
        let start = i;
        let start_line = line;
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && i + 1 < n && b[i + 1] == '/' {
            while i < n && b[i] != '\n' {
                i += 1;
            }
            toks.push(tok(TokKind::LineComment, &b[start..i], start_line));
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            line += count_lines(start, i, &b);
            toks.push(tok(TokKind::BlockComment, &b[start..i], start_line));
        } else if c == 'r'
            && i + 1 < n
            && b[i + 1] == '#'
            && i + 2 < n
            && (b[i + 2].is_alphabetic() || b[i + 2] == '_')
            && raw_string_hashes(&b[i..]).is_none()
        {
            // Raw identifier (`r#match`, `r#fn`): one Ident token whose
            // text keeps the `r#` prefix, so `is_ident("match")` does not
            // confuse it with the keyword.
            i += 2;
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(tok(TokKind::Ident, &b[start..i], start_line));
        } else if c == 'r' && raw_string_hashes(&b[i..]).is_some() {
            i += consume_raw_string(&b[i..]);
            line += count_lines(start, i, &b);
            toks.push(tok(TokKind::Str, &b[start..i], start_line));
        } else if c == 'b'
            && i + 1 < n
            && b[i + 1] == 'r'
            && raw_string_hashes(&b[i + 1..]).is_some()
        {
            i += 1 + consume_raw_string(&b[i + 1..]);
            line += count_lines(start, i, &b);
            toks.push(tok(TokKind::Str, &b[start..i], start_line));
        } else if c == '"' || (c == 'b' && i + 1 < n && b[i + 1] == '"') {
            i += if c == 'b' { 2 } else { 1 };
            i += consume_quoted(&b[i..], '"');
            line += count_lines(start, i, &b);
            toks.push(tok(TokKind::Str, &b[start..i], start_line));
        } else if c == 'b' && i + 1 < n && b[i + 1] == '\'' {
            i += 2;
            i += consume_quoted(&b[i..], '\'');
            toks.push(tok(TokKind::Char, &b[start..i], start_line));
        } else if c == '\'' {
            // Lifetime or char literal. A lifetime is `'` + ident NOT
            // followed by a closing `'`; everything else is a char.
            let mut j = i + 1;
            while j < n && (b[j].is_alphanumeric() || b[j] == '_') {
                j += 1;
            }
            if j > i + 1 && (j >= n || b[j] != '\'') {
                i = j;
                toks.push(tok(TokKind::Lifetime, &b[start..i], start_line));
            } else {
                i += 1;
                i += consume_quoted(&b[i..], '\'');
                toks.push(tok(TokKind::Char, &b[start..i], start_line));
            }
        } else if c.is_alphabetic() || c == '_' {
            while i < n && (b[i].is_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            toks.push(tok(TokKind::Ident, &b[start..i], start_line));
        } else if c.is_ascii_digit() {
            let radix_prefixed =
                c == '0' && i + 1 < n && matches!(b[i + 1], 'x' | 'X' | 'o' | 'O' | 'b' | 'B');
            while i < n
                && (b[i].is_alphanumeric()
                    || b[i] == '_'
                    || (b[i] == '.' && i + 1 < n && b[i + 1].is_ascii_digit() && b[i - 1] != '.')
                    // Signed float exponent (`1e-3`, `2.5E+9`): the sign
                    // belongs to the number iff the previous char was the
                    // exponent marker and the literal is not 0x/0o/0b
                    // radix-prefixed (where `E` is just a hex digit).
                    || (!radix_prefixed
                        && matches!(b[i], '+' | '-')
                        && matches!(b[i - 1], 'e' | 'E')
                        && i + 1 < n
                        && b[i + 1].is_ascii_digit()))
            {
                i += 1;
            }
            toks.push(tok(TokKind::Number, &b[start..i], start_line));
        } else {
            i += 1;
            toks.push(tok(TokKind::Punct, &b[start..i], start_line));
        }
    }
    toks
}

fn tok(kind: TokKind, text: &[char], line: usize) -> Tok {
    Tok {
        kind,
        text: text.iter().collect(),
        line,
    }
}

/// If `b` starts a raw string (`r"`, `r#"`, `r##"`, ...), the number of
/// `#`s; otherwise `None`. `b[0]` must be `r`.
fn raw_string_hashes(b: &[char]) -> Option<usize> {
    let mut j = 1;
    while j < b.len() && b[j] == '#' {
        j += 1;
    }
    (j < b.len() && b[j] == '"').then_some(j - 1)
}

/// Length of a raw string starting at `b[0] == 'r'`, delimiters included.
fn consume_raw_string(b: &[char]) -> usize {
    let hashes = raw_string_hashes(b).expect("checked by caller");
    let mut i = 1 + hashes + 1; // r, #*, "
    while i < b.len() {
        if b[i] == '"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&c| c == '#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        }
        i += 1;
    }
    b.len()
}

/// Length of the remainder of a quoted literal (after the opening quote),
/// closing quote included, honoring backslash escapes.
fn consume_quoted(b: &[char], quote: char) -> usize {
    let mut i = 0;
    while i < b.len() {
        if b[i] == '\\' {
            i += 2;
        } else if b[i] == quote {
            return i + 1;
        } else {
            i += 1;
        }
    }
    b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_puncts_numbers() {
        let t = kinds("fn foo(x: u32) -> Vec<u8> { x + 0x1f }");
        assert!(t.contains(&(TokKind::Ident, "fn".into())));
        assert!(t.contains(&(TokKind::Ident, "Vec".into())));
        assert!(t.contains(&(TokKind::Number, "0x1f".into())));
        assert!(t.contains(&(TokKind::Punct, "{".into())));
    }

    #[test]
    fn braces_inside_strings_and_comments_are_opaque() {
        let t = lex("\"}{\" /* } */ // {\nfoo");
        let puncts: Vec<&Tok> = t.iter().filter(|t| t.kind == TokKind::Punct).collect();
        assert!(puncts.is_empty(), "{puncts:?}");
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let t = kinds("<'a> 'b' '\\n' b'x'");
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 1);
        assert_eq!(t.iter().filter(|(k, _)| *k == TokKind::Char).count(), 3);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let t = kinds(r####"r#"has "quotes" inside"# x"####);
        assert_eq!(t[0].0, TokKind::Str);
        assert!(t[1].1 == "x");
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* outer /* inner */ still */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].0, TokKind::BlockComment);
    }

    #[test]
    fn line_numbers_are_one_based_and_advance() {
        let t = lex("a\nb\n  c");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 3);
    }

    #[test]
    fn multiline_tokens_advance_lines() {
        let t = lex("/* a\nb */ x\ny");
        assert_eq!(t[1].line, 2, "x sits on line 2");
        assert_eq!(t[2].line, 3);
    }

    #[test]
    fn float_vs_range() {
        let t = kinds("0..n 1.5");
        assert_eq!(t[0], (TokKind::Number, "0".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[4], (TokKind::Number, "1.5".into()));
    }

    #[test]
    fn raw_identifiers_are_idents_not_raw_strings() {
        let t = kinds("r#match r#fn(x)");
        assert_eq!(t[0], (TokKind::Ident, "r#match".into()));
        assert_eq!(t[1], (TokKind::Ident, "r#fn".into()));
        assert_eq!(t[2], (TokKind::Punct, "(".into()));
        // The prefix is kept, so keyword comparisons do not misfire.
        assert!(!lex("r#match").iter().any(|t| t.is_ident("match")));
    }

    #[test]
    fn raw_identifier_does_not_shadow_raw_strings() {
        // `r#"..."#` must still lex as one Str even though `r#` + alpha
        // looks like a raw-identifier prefix from the first two chars.
        let t = kinds(r####"r#"abc"# r#abc"####);
        assert_eq!(t[0].0, TokKind::Str);
        assert_eq!(t[1], (TokKind::Ident, "r#abc".into()));
    }

    #[test]
    fn signed_float_exponents_are_one_number() {
        let t = kinds("1e-3 2.5E+9 7e4");
        assert_eq!(t[0], (TokKind::Number, "1e-3".into()));
        assert_eq!(t[1], (TokKind::Number, "2.5E+9".into()));
        assert_eq!(t[2], (TokKind::Number, "7e4".into()));
    }

    #[test]
    fn exponent_sign_absorption_stops_where_rust_does() {
        // `1e` then binary minus: `1e- x` is not a signed exponent (no
        // digit follows), and hex `0xE-1` must not eat the minus.
        let t = kinds("a-3 0xE-1");
        assert_eq!(t[1], (TokKind::Punct, "-".into()));
        assert_eq!(t[3], (TokKind::Number, "0xE".into()));
        assert_eq!(t[4], (TokKind::Punct, "-".into()));
    }
}
