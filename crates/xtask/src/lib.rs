//! Repo-specific static analysis (`cargo xtask lint`).
//!
//! Six custom lints that no off-the-shelf tool can express, each
//! enforcing an invariant this codebase's correctness story leans on.
//! Three are per-function token lints:
//!
//! * [`hotpath`] — functions annotated `// lint: hot-path` (the engine
//!   step, conflict-resolution, and kinematics paths) must stay free of
//!   per-call allocation: no `Vec::new`, `vec![]`, `Box::new`,
//!   `.clone()`, `.collect()`, `.to_vec()`, `format!`, or `String`
//!   construction inside the annotated body.
//! * [`schemafp`] — the normalized token streams of the `TraceEvent` /
//!   envelope types in `crates/trace/src/schema.rs` and of the binary
//!   codec (`Tag`, `encode_event`, `decode_event` in
//!   `crates/trace/src/binary.rs`) are hashed against a committed
//!   fingerprint; any drift without a `SCHEMA_VERSION` bump in the same
//!   change fails the lint (`--bless` re-commits the pair).
//! * [`coverage`] — every bufferless invariant enumerated in
//!   `crates/core/src/invariants.rs` (`BUFFERLESS_INVARIANTS`) must have
//!   a matching `// check: <id>` tag in `crates/trace/src/verify.rs`, so
//!   no invariant silently drops out of offline verification.
//!
//! Three are *interprocedural*, built on a workspace-wide [`callgraph`]:
//!
//! * [`closure`] — `hot-path-alloc` extended to the transitive callee
//!   closure of every hot-path fn, so helpers can't smuggle allocations.
//! * [`nopanic`] — fns marked `// lint: no-panic` (serve request loop,
//!   snapshot exchange, streaming admission) and everything they reach
//!   must be free of `panic!`/`unwrap`/`expect`/`assert!`/indexing,
//!   modulo counted `// lint: allow-panic(reason)` sites.
//! * [`determinism`] — result-affecting crates may not iterate hash
//!   collections, read wall clocks outside `// lint: telemetry` fns, or
//!   use randomly seeded hashers.
//!
//! Each lint ships with a seeded-violation fixture under `fixtures/`;
//! `cargo xtask fixtures` (and `tests/lints.rs`) assert the exact
//! diagnostic, file and line the violation must produce.

pub mod callgraph;
pub mod closure;
pub mod coverage;
pub mod determinism;
pub mod hotpath;
pub mod lexer;
pub mod nopanic;
pub mod schemafp;

use std::fmt;
use std::path::{Path, PathBuf};

/// One lint finding, attributed to a repo-relative file and 1-based line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the lint root (forward slashes).
    pub file: String,
    /// 1-based line (0 = whole-file property).
    pub line: usize,
    /// Lint name (`hot-path-alloc`, `schema-drift`, `invariant-coverage`).
    pub lint: &'static str,
    /// Human-readable description of the violation.
    pub msg: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.msg
        )
    }
}

/// Where the lints look. All paths are derived from `root`, so the
/// seeded-violation fixtures can run the very same lint code over a
/// miniature tree that mirrors the repo layout.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root (the directory containing `Cargo.toml`).
    pub root: PathBuf,
}

impl Config {
    /// A config rooted at `root`.
    pub fn new(root: impl Into<PathBuf>) -> Self {
        Config { root: root.into() }
    }

    /// The version-pinned trace schema definition.
    pub fn schema_rs(&self) -> PathBuf {
        self.root.join("crates/trace/src/schema.rs")
    }

    /// The binary trace codec, pinned alongside the schema (absent in
    /// fixture trees that predate the binary framing).
    pub fn binary_rs(&self) -> PathBuf {
        self.root.join("crates/trace/src/binary.rs")
    }

    /// The committed schema fingerprint.
    pub fn fingerprint_file(&self) -> PathBuf {
        self.root.join("crates/xtask/schema.fingerprint")
    }

    /// The bufferless-invariant registry.
    pub fn invariants_rs(&self) -> PathBuf {
        self.root.join("crates/core/src/invariants.rs")
    }

    /// The offline trace verifier carrying the `// check:` tags.
    pub fn verify_rs(&self) -> PathBuf {
        self.root.join("crates/trace/src/verify.rs")
    }

    /// Repo-relative display form of `path` (forward slashes).
    pub fn rel(&self, path: &Path) -> String {
        path.strip_prefix(&self.root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/")
    }
}

/// Recursively collects the first-party `.rs` files under `root`:
/// `crates/*/src`, `crates/*/tests`, `src/`, `tests/`, `examples/` —
/// skipping `target`, the vendored workalikes, and the xtask lint
/// fixtures (which contain violations on purpose).
pub fn workspace_rs_files(cfg: &Config) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        collect_rs(&cfg.root.join(top), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            collect_rs(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// FNV-1a 64-bit over a byte stream: stable, dependency-free, and good
/// enough to pin a token stream (this is a drift detector, not a
/// cryptographic commitment).
pub fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnostic_formats_as_file_line_lint() {
        let d = Diagnostic {
            file: "crates/foo/src/lib.rs".into(),
            line: 42,
            lint: "hot-path-alloc",
            msg: "calls `.clone()`".into(),
        };
        assert_eq!(
            d.to_string(),
            "crates/foo/src/lib.rs:42: [hot-path-alloc] calls `.clone()`"
        );
    }

    #[test]
    fn fnv_is_stable() {
        assert_eq!(fnv1a(*b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(*b"a"), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn workspace_walk_finds_this_file_but_not_fixtures() {
        let cfg = Config::new(env!("CARGO_MANIFEST_DIR").to_string() + "/../..");
        let files = workspace_rs_files(&cfg);
        assert!(files.iter().any(|p| p.ends_with("crates/xtask/src/lib.rs")));
        assert!(!files.iter().any(|p| p
            .components()
            .any(|c| { c.as_os_str() == "fixtures" || c.as_os_str() == "vendor" })));
    }
}
