//! Determinism lint (`determinism`).
//!
//! The repo's entire verification story — golden-equivalence between the
//! AoS and SoA engines, sharded parallel trace verification, the
//! congestion+dilation bound tables — assumes that the same run spec
//! produces the same schedule, bit for bit, every time. That assumption
//! is easy to break silently: one `for (k, v) in hash_map` in a
//! result-affecting loop and packet service order varies per process
//! (std's hashers are randomly seeded per process since `RandomState`
//! seeds from the OS).
//!
//! Unlike the closure lints, this one is *scope*-based, not
//! marker-based: every non-test fn in the result-affecting crates
//! (routing-core, core, hotpotato-sim, leveled-net, baselines — not
//! serve/bench/trace, whose timing and I/O are presentation-layer) is
//! checked for three sources of nondeterminism:
//!
//! 1. **Wall-clock reads** — `Instant` / `SystemTime` identifiers in a
//!    fn body, unless the fn is marked `// lint: telemetry` (the marker
//!    asserts the readings feed observers/profiling only and never a
//!    routing decision).
//! 2. **Randomly seeded hashing** — `DefaultHasher` / `RandomState`,
//!    flagged unconditionally: result-affecting code has no legitimate
//!    use for a per-process-seeded hasher.
//! 3. **Hash-order iteration** — a `let` binding whose initializer or
//!    type annotation mentions `HashMap`/`HashSet` must not be iterated
//!    (`.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`,
//!    `for _ in map`, …). Keyed `insert`/`get` access stays fine — only
//!    order-revealing operations are flagged. (Field- and
//!    parameter-typed maps are invisible at token level; the repo's
//!    result-affecting state lives in locals and `Vec`s, and DESIGN.md
//!    §14 records this as the lint's known conservatism boundary.)

use crate::callgraph::CallGraph;
use crate::lexer::{Tok, TokKind};
use crate::{Config, Diagnostic};

/// Lint name used in diagnostics.
pub const LINT: &str = "determinism";

/// Repo-relative prefixes of result-affecting code.
pub const RESULT_AFFECTING: &[&str] = &[
    "crates/routing-core/src",
    "crates/core/src",
    "crates/hotpotato-sim/src",
    "crates/leveled-net/src",
    "crates/baselines/src",
];

/// Order-revealing methods on hash collections.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Lints every non-test fn in the result-affecting scope.
pub fn check(cfg: &Config) -> Vec<Diagnostic> {
    check_graph(&CallGraph::build(cfg))
}

/// Graph-reusing entry point (the graph supplies fn boundaries, markers
/// and test-ness; no reachability is needed here).
pub fn check_graph(g: &CallGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for f in &g.fns {
        if f.in_test || !RESULT_AFFECTING.iter().any(|p| f.rel.starts_with(p)) {
            continue;
        }
        let toks = &g.files[f.file].toks;
        let body = &toks[f.body.0.min(toks.len())..f.body.1.min(toks.len())];
        scan_fn(&f.rel, &f.name, f.has_marker("telemetry"), body, &mut diags);
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

/// Scans one fn body for the three nondeterminism sources.
fn scan_fn(rel: &str, fn_name: &str, telemetry: bool, body: &[Tok], diags: &mut Vec<Diagnostic>) {
    let code: Vec<&Tok> = body.iter().filter(|t| !t.is_comment()).collect();
    let mut hash_bindings: Vec<String> = Vec::new();
    let mut i = 0;
    while i < code.len() {
        let t = code[i];
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Instant" | "SystemTime" if !telemetry => diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: t.line,
                    lint: LINT,
                    msg: format!(
                        "fn `{fn_name}` reads `{}` (wall clock in result-affecting code; \
                         mark `// lint: telemetry` if observer-only)",
                        t.text
                    ),
                }),
                "DefaultHasher" | "RandomState" => diags.push(Diagnostic {
                    file: rel.to_string(),
                    line: t.line,
                    lint: LINT,
                    msg: format!(
                        "fn `{fn_name}` uses `{}` (randomly seeded hash order)",
                        t.text
                    ),
                }),
                "use" => {
                    // `use …;` imports a name, it does not read it —
                    // skip to the terminating `;` so `use …::RandomState`
                    // is not reported as a use-site.
                    while i < code.len() && !code[i].is_punct(';') {
                        i += 1;
                    }
                }
                "let" => {
                    // `let [mut] name … = …;` — does the statement
                    // mention a hash collection?
                    let mut j = i + 1;
                    if code.get(j).is_some_and(|t| t.is_ident("mut")) {
                        j += 1;
                    }
                    if let Some(name) = code.get(j).filter(|t| t.kind == TokKind::Ident) {
                        let mut k = j + 1;
                        let mut hashy = false;
                        let mut depth = 0usize;
                        while k < code.len() {
                            let c = code[k];
                            if c.is_punct('{') {
                                depth += 1;
                            } else if c.is_punct('}') {
                                depth = depth.saturating_sub(1);
                            } else if depth == 0 && c.is_punct(';') {
                                break;
                            } else if c.is_ident("HashMap") || c.is_ident("HashSet") {
                                hashy = true;
                            }
                            k += 1;
                        }
                        if hashy {
                            hash_bindings.push(name.text.clone());
                        }
                    }
                }
                "in" => {
                    // `for pat in [&][mut] name` over a hash binding
                    // (when `name` is not further dereferenced with `.`,
                    // which the method arm below reports instead).
                    let mut j = i + 1;
                    while code
                        .get(j)
                        .is_some_and(|t| t.is_punct('&') || t.is_ident("mut"))
                    {
                        j += 1;
                    }
                    if let Some(name) = code.get(j).filter(|t| t.kind == TokKind::Ident) {
                        let next_is_dot = code.get(j + 1).is_some_and(|t| t.is_punct('.'));
                        if hash_bindings.contains(&name.text) && !next_is_dot {
                            diags.push(Diagnostic {
                                file: rel.to_string(),
                                line: name.line,
                                lint: LINT,
                                msg: format!(
                                    "fn `{fn_name}` iterates hash collection `{}` \
                                     (unordered iteration affects results)",
                                    name.text
                                ),
                            });
                        }
                    }
                }
                _ => {
                    // `name . iter_method (` on a hash binding.
                    if hash_bindings.contains(&t.text)
                        && code.get(i + 1).is_some_and(|n| n.is_punct('.'))
                    {
                        if let Some(m) = code.get(i + 2).filter(|n| n.kind == TokKind::Ident) {
                            if ITER_METHODS.contains(&m.text.as_str())
                                && code.get(i + 3).is_some_and(|n| n.is_punct('('))
                            {
                                diags.push(Diagnostic {
                                    file: rel.to_string(),
                                    line: m.line,
                                    lint: LINT,
                                    msg: format!(
                                        "fn `{fn_name}` iterates hash collection `{}` via \
                                         `.{}()` (unordered iteration affects results)",
                                        t.text, m.text
                                    ),
                                });
                            }
                        }
                    }
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn rendered(src: &str) -> Vec<String> {
        let mut g = CallGraph::empty();
        g.add_file(
            "crates/routing-core/src/lib.rs".into(),
            "routing_core".into(),
            src,
        );
        g.index();
        check_graph(&g).iter().map(ToString::to_string).collect()
    }

    #[test]
    fn instant_in_scope_fires_unless_telemetry() {
        let diags = rendered("fn f() { let _t = Instant::now(); }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].contains("reads `Instant`"), "{diags:?}");
        let ok = rendered("// lint: telemetry\nfn f() { let _t = Instant::now(); }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn default_hasher_always_fires() {
        let diags = rendered("// lint: telemetry\nfn f() { let _h = DefaultHasher::new(); }\n");
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].contains("DefaultHasher"), "{diags:?}");
    }

    #[test]
    fn hashmap_iteration_fires_but_keyed_access_does_not() {
        let ok =
            rendered("fn f() { let mut m = HashMap::new(); m.insert(1, 2); let _ = m.get(&1); }\n");
        assert!(ok.is_empty(), "{ok:?}");
        let diags = rendered(
            "fn f() { let m: HashMap<u32, u32> = HashMap::new(); for _kv in &m {} let _n = m.iter().count(); }\n",
        );
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(
            diags[0].contains("iterates hash collection `m`"),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_scope_and_test_code_are_skipped() {
        let mut g = CallGraph::empty();
        g.add_file(
            "crates/serve/src/lib.rs".into(),
            "serve".into(),
            "fn f() { let _t = Instant::now(); }\n",
        );
        g.add_file(
            "crates/routing-core/src/x.rs".into(),
            "routing_core".into(),
            "#[cfg(test)]\nmod tests {\n    fn f() { let _t = Instant::now(); }\n}\n",
        );
        g.index();
        assert!(check_graph(&g).is_empty());
    }

    #[test]
    fn use_imports_are_not_use_sites() {
        let diags = rendered(
            "fn f(key: u64) -> u64 {\n    use std::hash::{BuildHasher, RandomState};\n    RandomState::new().build_hasher().finish()\n}\n",
        );
        assert_eq!(
            diags.len(),
            1,
            "only the construction, not the import: {diags:?}"
        );
        assert!(diags[0].contains(":3:"), "{diags:?}");
    }

    #[test]
    fn vec_iteration_is_fine() {
        let ok = rendered("fn f(v: &Vec<u32>) -> u32 { v.iter().sum() }\n");
        assert!(ok.is_empty(), "{ok:?}");
    }
}
