//! Interprocedural hot-path allocation lint (`hot-path-closure`).
//!
//! [`crate::hotpath`] checks `// lint: hot-path` bodies intraprocedurally,
//! so a marked fn could launder an allocation through an unmarked helper:
//! the marked body shows only a call, the helper shows a `Vec::new` with
//! no marker above it, and the old lint sees nothing. This lint closes
//! that hole: it takes the transitive callee closure of every hot-path fn
//! over the workspace [`crate::callgraph::CallGraph`] and scans every
//! *reached, unmarked* fn with the same forbidden-shape table, reporting
//! the call chain by which the allocation is reachable from the inner
//! loop.
//!
//! Marked roots themselves are deliberately excluded here (they are the
//! old lint's job — two diagnostics for one site would be noise), as are
//! fns marked `// lint: trusted(reason)`, which cut traversal entirely.
//! Unresolved calls (std, vendored externals) are assumed
//! allocation-free at the call boundary; the shapes std allocates with
//! (`Vec::new`, `format!`, …) appear in first-party source where this
//! lint does see them.

use crate::callgraph::CallGraph;
use crate::{hotpath, Config, Diagnostic};

/// Lint name used in diagnostics.
pub const LINT: &str = "hot-path-closure";

/// Lints the transitive callee closure of every hot-path fn.
pub fn check(cfg: &Config) -> Vec<Diagnostic> {
    check_graph(&CallGraph::build(cfg))
}

/// Graph-reusing entry point (the driver builds one graph for all
/// interprocedural lints).
pub fn check_graph(g: &CallGraph) -> Vec<Diagnostic> {
    let roots = g.marked("hot-path");
    let (reach, _trusted) = g.reachable(&roots);
    let mut diags = Vec::new();
    for (&id, parent) in &reach {
        if parent.is_none() {
            continue; // a root: the intraprocedural lint owns it
        }
        let f = &g.fns[id];
        if f.has_marker("hot-path") || f.has_marker("trusted") {
            continue;
        }
        let toks = &g.files[f.file].toks;
        let body = &toks[f.body.0.min(toks.len())..f.body.1.min(toks.len())];
        for (line, shape) in hotpath::shape_hits(body) {
            let chain = g.chain(&reach, id);
            let root = chain.split(" → ").next().unwrap_or("?").to_string();
            diags.push(Diagnostic {
                file: f.rel.clone(),
                line,
                lint: LINT,
                msg: format!(
                    "fn `{}`, reached from hot-path fn `{root}` via {chain}, \
                     uses `{shape}` (allocates per call)",
                    f.name
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;

    fn graph(src: &str) -> CallGraph {
        let mut g = CallGraph::empty();
        g.add_file("crates/demo/src/lib.rs".into(), "demo".into(), src);
        g.index();
        g
    }

    #[test]
    fn transitive_allocation_is_flagged_with_chain() {
        let g = graph(
            "// lint: hot-path\nfn root(buf: &mut [u32]) { mid(buf); }\n\
             fn mid(buf: &mut [u32]) { leaf(buf); }\n\
             fn leaf(_buf: &mut [u32]) { let _v = Vec::new(); }\n",
        );
        let diags: Vec<String> = check_graph(&g).iter().map(ToString::to_string).collect();
        assert_eq!(
            diags,
            [
                "crates/demo/src/lib.rs:4: [hot-path-closure] fn `leaf`, reached from \
              hot-path fn `root` via root → mid → leaf, uses `Vec::new` (allocates per call)"
            ]
        );
    }

    #[test]
    fn root_body_is_left_to_the_intraprocedural_lint() {
        let g = graph("// lint: hot-path\nfn root() { let _v = Vec::new(); }\n");
        assert!(check_graph(&g).is_empty());
    }

    #[test]
    fn unreached_allocation_is_fine() {
        let g = graph("// lint: hot-path\nfn root() {}\nfn elsewhere() { let _v = Vec::new(); }\n");
        assert!(check_graph(&g).is_empty());
    }

    #[test]
    fn trusted_fn_is_not_scanned_or_descended() {
        let g = graph(
            "// lint: hot-path\nfn root() { mid(); }\n\
             // lint: trusted(amortized: grows once, then reused)\n\
             fn mid() { let _v = Vec::new(); leaf(); }\n\
             fn leaf() { let _s = String::new(); }\n",
        );
        assert!(check_graph(&g).is_empty());
    }
}
