//! Seeded violation: a SoA-style dispatch loop that allocates per call.
//!
//! Models the exact regression the hot-path lint exists to catch in the
//! data-oriented engine: a scratch buffer that should live in the
//! band-local context (`BandCtx`) being rebuilt inside the per-step
//! dispatch instead. The shape mirrors `dispatch_band` / `finish_step`:
//! iterate occupied nodes, gather arrivals, stage moves.

pub struct Shared {
    pub occupied: Vec<u32>,
    pub arrivals: Vec<u32>,
    pub arr_stride: u32,
}

// lint: hot-path
pub fn dispatch_soa(sh: &Shared, staged: &mut Vec<u64>) {
    for &v in &sh.occupied {
        let base = (v * sh.arr_stride) as usize;
        // Per-node scratch built fresh every step: the allocation the
        // lint must flag (belongs in a reused band-local buffer).
        let contenders: Vec<u32> = sh.arrivals[base..base + 2].to_vec();
        let tag = format!("node{v}");
        for &p in &contenders {
            staged.push(u64::from(p) | (u64::from(tag.len() as u32) << 32));
        }
    }
}
