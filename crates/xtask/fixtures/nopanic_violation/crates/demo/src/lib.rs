//! Seeded violation for the `no-panic` lint.
//!
//! One marked region root with a direct panic source, a transitive one
//! reached through a helper, and one suppressed-and-counted
//! `allow-panic(reason)` site. The suppressed site must not appear in
//! the diagnostics but must show up in the allowed count.

/// The region root: models a serve-loop handler.
// lint: no-panic
pub fn handle(input: Option<u32>, table: &[u32]) -> u32 {
    // Direct violation: unwrap on client-controlled input.
    let idx = input.unwrap() as usize;
    // Suppressed and counted: the reason is part of the marker.
    // lint: allow-panic(table arity is fixed at build time)
    let base = table[0];
    base + lookup(table, idx)
}

/// Reached from the root: indexing with an unchecked index.
fn lookup(table: &[u32], idx: usize) -> u32 {
    table[idx]
}

/// Not reachable from any no-panic root — free to panic.
pub fn debug_dump(x: Option<u32>) -> u32 {
    x.expect("debug only")
}
