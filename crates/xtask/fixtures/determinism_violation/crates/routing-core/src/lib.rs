//! Seeded violation for the `determinism` lint.
//!
//! This tree sits under `crates/routing-core/src`, a result-affecting
//! path: hash-order iteration of a local binding, wall-clock reads and
//! randomly seeded hashers must all be flagged — except inside a
//! `// lint: telemetry` fn, which models an observer that may read the
//! clock.

use std::collections::HashMap;

/// Iterates a hash collection: the emitted order leaks hash order.
pub fn assign_sets(packets: &[(u32, u32)]) -> Vec<u32> {
    let mut by_set: HashMap<u32, u32> = HashMap::new();
    for &(pkt, set) in packets {
        by_set.insert(pkt, set);
    }
    let mut out = Vec::new();
    for (&pkt, &set) in by_set.iter() {
        out.push(pkt ^ set);
    }
    out
}

/// Reads the wall clock in result-affecting code.
pub fn seed_from_clock() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().as_nanos() as u64
}

/// Uses the randomly seeded std hasher.
pub fn bucket_of(key: u64) -> u64 {
    use std::hash::{BuildHasher, Hasher, RandomState};
    let mut h = RandomState::new().build_hasher();
    h.write_u64(key);
    h.finish()
}

/// Observer-only clock read: exempt via the telemetry marker.
// lint: telemetry
pub fn sample_wall_ms() -> u128 {
    std::time::Instant::now().elapsed().as_millis()
}
