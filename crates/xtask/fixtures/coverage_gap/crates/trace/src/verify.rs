//! Fixture verifier: covers two of the three registered invariants and
//! carries one tag that matches nothing in the registry.

/// Stand-in check bodies — the lint only reads the comment tags.
pub fn verify() {
    // check: slot-capacity — covered.
    // check: no-rest — covered.
    // check: mystery-tag — not in the registry; must be flagged.
}
