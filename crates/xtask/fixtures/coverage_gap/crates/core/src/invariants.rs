//! Seeded coverage gap: `ghost-invariant` below is registered but has
//! no `// check:` tag in the fixture verifier, and the verifier carries
//! a `mystery-tag` no registry entry matches. Both directions must fire.

/// Miniature registry mirroring the real `BUFFERLESS_INVARIANTS` shape.
pub const BUFFERLESS_INVARIANTS: &[(&str, &str)] = &[
    ("slot-capacity", "one packet per (edge, dir) slot per step"),
    ("no-rest", "every in-flight packet moves every step"),
    ("ghost-invariant", "registered here but never checked by the verifier"),
];
