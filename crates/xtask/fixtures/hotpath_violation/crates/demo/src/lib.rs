//! Seeded hot-path allocation violations.
//!
//! `cargo xtask fixtures` runs the hot-path lint over this tree and
//! asserts the three violations below fire at exactly the lines listed
//! in ../../../expected.txt — and that the clean and unannotated
//! functions do not.

/// Allocation-free and annotated — must NOT fire.
// lint: hot-path
pub fn clean_sum(xs: &[u32]) -> u32 {
    xs.iter().sum()
}

/// Annotated and leaky — must fire once per forbidden call.
// lint: hot-path
pub fn leaky_route(buf: &mut [u32], src: &[u32]) -> Vec<u32> {
    let copy = src.to_vec();
    let msg = format!("{} packets", copy.len());
    buf[0] = msg.len() as u32;
    copy.iter().map(|x| x + 1).collect()
}

/// Unannotated — may allocate freely, must NOT fire.
pub fn cold_path() -> Vec<String> {
    vec![String::from("ok")]
}
