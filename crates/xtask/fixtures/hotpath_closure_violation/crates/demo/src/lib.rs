//! Seeded violation for the `hot-path-closure` lint.
//!
//! The hot-path fn itself is allocation-free — the intraprocedural
//! `hot-path-alloc` lint sees nothing here. The allocation hides two
//! calls down, in a helper reached only through the call graph; the
//! closure lint must flag it with the full call chain.

/// The annotated entry point: clean body, dirty closure.
// lint: hot-path
pub fn step(xs: &mut [u32]) {
    for x in xs.iter_mut() {
        *x = advance(*x);
    }
}

/// First hop: still allocation-free.
fn advance(x: u32) -> u32 {
    widen(x) + 1
}

/// Second hop: allocates per call.
fn widen(x: u32) -> u32 {
    let v = vec![x; 2];
    v[0].wrapping_add(v[1])
}

/// Not reachable from the hot path — its allocation must NOT be
/// flagged, proving the closure is call-graph-driven, not crate-wide.
pub fn cold_setup(n: usize) -> Vec<u32> {
    let mut v = Vec::new();
    v.resize(n, 0);
    v
}
