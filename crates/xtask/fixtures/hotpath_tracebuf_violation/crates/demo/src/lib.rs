//! Seeded violation: a trace-writer emit path that allocates per event.
//!
//! Models the regression the sized trace buffer exists to prevent: the
//! JSONL observer's per-event emit hook building a fresh `String` per
//! event instead of appending into its reused byte buffer and flushing
//! only at the capacity threshold and at phase/quiesce boundaries.

pub struct Sink {
    pub buf: Vec<u8>,
    pub written: usize,
}

// lint: hot-path
pub fn emit_move(sink: &mut Sink, t: u64, pkt: u32) {
    // A fresh heap string per trace event — exactly what the sized
    // buffer makes unnecessary; the lint must flag both allocations.
    let line = format!("{{\"ev\":\"move\",\"t\":{t},\"pkt\":{pkt}}}\n");
    let owned = line.as_str().to_string();
    sink.buf.extend_from_slice(owned.as_bytes());
    sink.written += owned.len();
}

/// Buffered append — allocation-free, must NOT fire.
// lint: hot-path
pub fn emit_buffered(sink: &mut Sink, bytes: &[u8]) {
    sink.buf.extend_from_slice(bytes);
    sink.written += bytes.len();
}
