//! Seeded schema drift: the committed fingerprint next to this tree
//! (crates/xtask/schema.fingerprint) carries a stale hash at the SAME
//! schema_version, modeling an edit to the wire types that nobody
//! acknowledged with a `SCHEMA_VERSION` bump. The lint must fail at the
//! `SCHEMA_VERSION` line below.

/// Trace format version.
pub const SCHEMA_VERSION: u32 = 1;

/// Envelope header.
pub struct Meta {
    /// Format version of the writer.
    pub schema_version: u32,
}

/// Per-step counters.
pub struct StatsLine {
    /// Steps simulated — this field was renamed after the last bless.
    pub steps_renamed_without_version_bump: u64,
}

/// Event stream.
pub enum TraceEvent {
    /// A packet entered the network.
    Inject {
        /// Packet id.
        id: u64,
    },
    /// A packet reached its destination.
    Absorb {
        /// Packet id.
        id: u64,
    },
}

/// Live rollup envelope.
pub struct Rollup {
    /// Snapshot sequence number.
    pub seq: u64,
}
