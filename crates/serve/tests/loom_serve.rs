//! Loom models of the snapshot exchange behind the monitoring service
//! (`hotpotato_sim::exchange`, the engine→HTTP handoff).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; each model explores
//! every bounded thread schedule of a small writer/reader interaction
//! and must hold in all of them:
//!
//! * torn-snapshot impossibility — a reader racing non-blocking
//!   publishes always observes a coherent pair (the invariant `/metrics`
//!   rendering depends on);
//! * flush visibility — after the quiesce `flush_with` returns, every
//!   later acquire observes the final snapshot (what makes the
//!   rollup-at-quiesce consistency test deterministic);
//! * multi-reader safety — two handler threads plus the writer never
//!   deadlock, and both readers stay untorn;
//! * bounded seq regression — the sequence a single reader observes
//!   across consecutive acquires steps back by at most one around a
//!   flip (the documented relaxation of the protocol).
//!
//! Run with: `RUSTFLAGS="--cfg loom" cargo test -p serve --test loom_serve`
#![cfg(loom)]

use hotpotato_sim::snapshot_exchange;

#[test]
fn racing_reader_never_sees_torn_snapshot() {
    loom::model(|| {
        // The payload is a pair the writer always keeps equal to
        // (i, i); a torn read would see mismatched halves.
        let (mut publisher, reader) = snapshot_exchange((0u64, 0u64), (0u64, 0u64));
        let t = loom::thread::spawn(move || {
            let (seq, a, b) = reader.acquire(|seq, &(a, b)| (seq, a, b));
            assert_eq!(a, b, "torn snapshot at seq {seq}");
            // A coherent slot also has a coherent stamp: the value the
            // writer stores at publish i is (i, i).
            assert_eq!(a, seq, "slot value does not match its seq stamp");
        });
        for i in 1..=2u64 {
            publisher.publish_with(|v| *v = (i, i));
        }
        t.join().unwrap();
    });
}

#[test]
fn flush_is_visible_to_every_later_acquire() {
    loom::model(|| {
        let (mut publisher, reader) = snapshot_exchange(0u32, 0u32);
        let racer = reader.clone();
        // A reader racing the run can hold slots mid-publish — publishes
        // may skip, but the blocking flush must still land.
        let t = loom::thread::spawn(move || {
            racer.acquire(|_, v| {
                assert!([0, 10, 99].contains(v), "impossible value {v}");
            });
        });
        publisher.publish_with(|v| *v = 10);
        publisher.flush_with(|v| *v = 99);
        // flush_with has returned: the final snapshot is front and no
        // newer fill exists, so every acquire from now on sees it.
        assert_eq!(reader.acquire(|_, v| *v), 99);
        t.join().unwrap();
        assert_eq!(reader.acquire(|_, v| *v), 99);
    });
}

#[test]
fn two_readers_and_writer_never_deadlock_and_stay_untorn() {
    loom::model(|| {
        let (mut publisher, reader) = snapshot_exchange((0u64, 0u64), (0u64, 0u64));
        let r1 = reader.clone();
        let t1 = loom::thread::spawn(move || {
            let ok = r1.acquire(|_, &(a, b)| a == b);
            assert!(ok, "reader 1 saw a torn snapshot");
        });
        let t2 = loom::thread::spawn(move || {
            let ok = reader.acquire(|_, &(a, b)| a == b);
            assert!(ok, "reader 2 saw a torn snapshot");
        });
        publisher.publish_with(|v| *v = (1, 1));
        publisher.publish_with(|v| *v = (2, 2));
        t1.join().unwrap();
        t2.join().unwrap();
    });
}

#[test]
fn reader_seq_steps_back_by_at_most_one() {
    loom::model(|| {
        let (mut publisher, reader) = snapshot_exchange(0u64, 0u64);
        let t = loom::thread::spawn(move || {
            let first = reader.acquire(|seq, _| seq);
            let second = reader.acquire(|seq, _| seq);
            // The documented relaxation: around a flip the visible seq
            // may regress, but never by more than one publish.
            assert!(
                second + 1 >= first,
                "seq regressed from {first} to {second}"
            );
        });
        for i in 1..=2u64 {
            publisher.publish_with(|v| *v = i);
        }
        t.join().unwrap();
    });
}
