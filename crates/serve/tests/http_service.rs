//! End-to-end service tests: the quiesce-consistency guarantees
//! (`/metrics` == final `RouteStats`, `/rollup` == the in-process
//! aggregator, byte-for-byte through the shared renderer) plus the HTTP
//! plumbing over a real ephemeral-port listener.

use hotpotato_sim::{route_streaming, StreamPriority, StreamingConfig};
use hotpotato_trace::{parse_rollup, StreamingAggregator};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::spec::{parse_run_spec, parse_topo, parse_workload};
use serve::http::{http_get, HttpServer};
use serve::service::{build_router, into_handler};
use serve::{Request, RunConfig, Service};

const SPEC: &str = "butterfly:6/bitrev/busch/7";

fn get(service: &Service, path: &str) -> serve::Response {
    service.handle(&Request {
        method: "GET".into(),
        path: path.into(),
    })
}

/// Runs the same instance the service hosts, in-process, with the same
/// seed discipline; returns the final stats and aggregator.
fn reference_run(spec: &str, cap: usize) -> (hotpotato_sim::RouteStats, StreamingAggregator) {
    let run = parse_run_spec(spec).unwrap();
    let topo = parse_topo(&run.topo).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(run.seed);
    let problem = parse_workload(&run.workload, &topo, &mut rng).unwrap();
    let router = build_router(&run.algo, &problem, run.engine_kind()).unwrap();
    let mut agg = StreamingAggregator::new(cap);
    let outcome = router.route(&problem, &mut rng, &mut agg);
    (outcome.stats, agg)
}

/// Extracts the value of a single-sample metric line
/// `name{run="<run>"...} value` from an exposition.
fn metric_value(text: &str, name: &str, labels: &str) -> f64 {
    let needle = format!("{name}{{{labels}}} ");
    let line = text
        .lines()
        .find(|l| l.starts_with(&needle))
        .unwrap_or_else(|| panic!("no sample '{needle}' in exposition:\n{text}"));
    line[needle.len()..].parse().unwrap()
}

#[test]
fn final_metrics_match_route_stats_exactly() {
    let run = parse_run_spec(SPEC).unwrap();
    let name = run.name();
    let mut service = Service::launch(vec![RunConfig::new(run)]).unwrap();
    service.wait();

    let (stats, _) = reference_run(SPEC, 64);
    let text = get(&service, "/metrics").body;
    let run_label = format!("run=\"{name}\"");
    assert_eq!(
        metric_value(&text, "hotpotato_steps_total", &run_label),
        stats.steps_run as f64,
    );
    assert_eq!(
        metric_value(&text, "hotpotato_deliveries_total", &run_label),
        stats.delivered_count() as f64,
    );
    let safe = metric_value(
        &text,
        "hotpotato_deflections_total",
        &format!("{run_label},kind=\"safe\""),
    );
    let unsafe_ = metric_value(
        &text,
        "hotpotato_deflections_total",
        &format!("{run_label},kind=\"unsafe\""),
    );
    assert_eq!(safe + unsafe_, stats.total_deflections() as f64);
    // The histogram's _sum is total deflections and its _count is the
    // packet population.
    assert_eq!(
        metric_value(&text, "hotpotato_deflections_per_packet_sum", &run_label),
        stats.total_deflections() as f64,
    );
    assert_eq!(
        metric_value(&text, "hotpotato_run_finished", &run_label),
        1.0
    );
    assert_eq!(
        metric_value(&text, "hotpotato_active_packets", &run_label),
        0.0
    );
}

#[test]
fn rollup_at_quiesce_equals_in_process_aggregator() {
    let run = parse_run_spec(SPEC).unwrap();
    let name = run.name();
    let mut service = Service::launch(vec![RunConfig::new(run)]).unwrap();
    service.wait();

    let (_, agg) = reference_run(SPEC, 64);
    let body = get(&service, &format!("/rollup/{name}")).body;
    let envelope = parse_rollup(&body).unwrap();
    assert_eq!(envelope.run, name);
    assert!(envelope.finished);
    // Same renderer, same state → identical JSON values, and identical
    // compact encodings.
    assert_eq!(envelope.rollup, agg.to_json());
    assert_eq!(
        envelope.rollup.to_compact_string(),
        agg.to_json().to_compact_string(),
    );
}

#[test]
fn mid_run_scrapes_are_well_formed() {
    // Throttle hard enough that the run is still in flight when we
    // scrape: butterfly:6 bitrev takes >= 64 steps and each step sleeps
    // 2ms, so the window is >= 100ms wide.
    let mut config = RunConfig::new(parse_run_spec(SPEC).unwrap());
    config.throttle_us = 2000;
    config.publish_every = 8;
    let name = config.spec.name();
    let mut service = Service::launch(vec![config]).unwrap();

    let mut saw_unfinished = false;
    for _ in 0..20 {
        let text = get(&service, "/metrics").body;
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.rsplit_once(' ').is_some(),
                "malformed exposition line: {line}"
            );
        }
        let rollup = parse_rollup(&get(&service, &format!("/rollup/{name}")).body).unwrap();
        if !rollup.finished {
            saw_unfinished = true;
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(saw_unfinished, "every scrape saw the run already finished");
    service.wait();
    assert!(
        parse_rollup(&get(&service, &format!("/rollup/{name}")).body)
            .unwrap()
            .finished
    );
}

#[test]
fn endpoints_route_and_404() {
    let mut service = Service::launch(vec![RunConfig::new(parse_run_spec(SPEC).unwrap())]).unwrap();
    service.wait();

    assert_eq!(get(&service, "/healthz").status, 200);
    assert_eq!(get(&service, "/healthz").body, "ok\n");
    let runs = get(&service, "/runs");
    assert_eq!(runs.status, 200);
    assert!(runs.body.contains("\"algo\":\"busch\""), "{}", runs.body);
    assert!(runs.body.contains("\"finished\":true"), "{}", runs.body);
    assert_eq!(get(&service, "/rollup/nope").status, 404);
    assert_eq!(get(&service, "/wat").status, 404);
    // Query strings are ignored for routing.
    assert_eq!(get(&service, "/metrics?x=1").status, 200);
}

#[test]
fn serves_over_real_sockets() {
    let run = parse_run_spec(SPEC).unwrap();
    let name = run.name();
    let mut service = Service::launch(vec![RunConfig::new(run)]).unwrap();
    service.wait();
    let (stats, _) = reference_run(SPEC, 64);

    let server = HttpServer::bind("127.0.0.1:0").unwrap();
    let addr = server
        .serve_in_background(into_handler(service))
        .to_string();

    let (status, body) = http_get(&addr, "/healthz").unwrap();
    assert_eq!((status, body.as_str()), (200, "ok\n"));
    let (status, text) = http_get(&addr, "/metrics").unwrap();
    assert_eq!(status, 200);
    assert_eq!(
        metric_value(&text, "hotpotato_steps_total", &format!("run=\"{name}\"")),
        stats.steps_run as f64,
    );
    let (status, body) = http_get(&addr, &format!("/rollup/{name}")).unwrap();
    assert_eq!(status, 200);
    assert!(parse_rollup(&body).unwrap().finished);
    let (status, _) = http_get(&addr, "/rollup/nope").unwrap();
    assert_eq!(status, 404);
}

#[test]
fn streaming_run_serves_admission_and_latency_families() {
    const STREAM_SPEC: &str = "butterfly:6/pairs:64/greedy/7/poisson:0.5";
    let run = parse_run_spec(STREAM_SPEC).unwrap();
    let name = run.name();
    let mut service = Service::launch(vec![RunConfig::new(run)]).unwrap();
    service.wait();

    // Reference: the same spec under the same rng discipline (schedule
    // drawn from the post-workload stream, routing continues from it).
    let run = parse_run_spec(STREAM_SPEC).unwrap();
    let (_topo, problem, mut rng) = run.instantiate().unwrap();
    let process = run.arrival_process().unwrap().unwrap();
    let schedule = process.schedule(problem.num_packets(), &mut rng);
    let cfg = StreamingConfig {
        priority: StreamPriority::for_algo(&run.algo).unwrap(),
        ..StreamingConfig::default()
    };
    let out = route_streaming(&problem, &schedule, &cfg, &mut rng);
    assert!(out.drained);

    let text = get(&service, "/metrics").body;
    let rl = format!("run=\"{name}\"");
    assert_eq!(
        metric_value(&text, "hotpotato_arrivals_total", &rl),
        out.arrivals as f64,
    );
    assert_eq!(
        metric_value(&text, "hotpotato_dropped_total", &rl),
        out.dropped as f64,
    );
    assert_eq!(
        metric_value(&text, "hotpotato_steps_total", &rl),
        out.stats.steps_run as f64,
    );
    assert_eq!(
        metric_value(&text, "hotpotato_deliveries_total", &rl),
        out.stats.delivered_count() as f64,
    );
    // Quiesced: nothing arrived-but-unresolved remains.
    assert_eq!(
        metric_value(&text, "hotpotato_injection_queue_depth", &rl),
        0.0
    );
    // The latency histogram counted every delivery, and the sliding
    // window percentiles are finite and ordered.
    assert_eq!(
        metric_value(&text, "hotpotato_delivery_latency_steps_count", &rl),
        out.stats.delivered_count() as f64,
    );
    let p = |q: &str| {
        metric_value(
            &text,
            "hotpotato_delivery_latency_window_steps",
            &format!("{rl},quantile=\"{q}\""),
        )
    };
    let (p50, p95, p99) = (p("0.5"), p("0.95"), p("0.99"));
    assert!(p50.is_finite() && p95.is_finite() && p99.is_finite());
    assert!(p50 <= p95 && p95 <= p99, "percentiles ordered");
    // Rollup quiesce consistency holds for streaming runs too, and the
    // /runs listing carries the arrival spec.
    assert!(
        parse_rollup(&get(&service, &format!("/rollup/{name}")).body)
            .unwrap()
            .finished
    );
    assert!(
        get(&service, "/runs").body.contains("poisson:0.5"),
        "{}",
        get(&service, "/runs").body
    );
}

#[test]
fn duplicate_and_invalid_specs_fail_launch() {
    let a = RunConfig::new(parse_run_spec(SPEC).unwrap());
    let b = RunConfig::new(parse_run_spec(SPEC).unwrap());
    let Err(e) = Service::launch(vec![a, b]) else {
        panic!("duplicate specs launched")
    };
    assert!(e.contains("duplicate"), "{e}");
    assert!(Service::launch(vec![]).is_err());
    // An unknown algorithm no longer reaches launch: parse_run_spec
    // validates against the known set up front.
    let Err(e) = parse_run_spec("butterfly:4/bitrev/zigzag") else {
        panic!("bad algo parsed")
    };
    assert!(e.contains("unknown algorithm"), "{e}");
    assert!(parse_run_spec("nope").is_err());
}

#[test]
fn two_runs_render_in_deterministic_sorted_order() {
    let configs = vec![
        RunConfig::new(parse_run_spec("butterfly:4/bitrev/sf/3").unwrap()),
        RunConfig::new(parse_run_spec("butterfly:4/bitrev/greedy/3").unwrap()),
    ];
    let mut service = Service::launch(configs).unwrap();
    service.wait();
    let names: Vec<String> = service
        .run_names()
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let mut sorted = names.clone();
    sorted.sort();
    assert_eq!(names, sorted);
    // Two scrapes of the quiesced service are byte-identical.
    assert_eq!(
        get(&service, "/metrics").body,
        get(&service, "/metrics").body
    );
}
