//! The monitoring service: hosts simulation runs and renders endpoints.
//!
//! [`Service::launch`] validates every [`RunConfig`] up front (topology,
//! workload, and algorithm all parse before any thread starts), then
//! spawns one simulation thread per run. Each thread drives its router
//! with a [`LiveObserver`] and finishes with a blocking flush, so after
//! [`Service::wait`] the served state is the exact final [`RouteStats`](hotpotato_sim::RouteStats).
//!
//! Endpoint rendering is pure: `handle` only reads snapshots through the
//! exchange, so it can be called from any number of HTTP threads.

use crate::http::{Request, Response, EXPOSITION_CONTENT_TYPE};
use crate::live::{LiveObserver, LiveSnapshot, DEFL_BUCKET_BOUNDS, LAT_BUCKET_BOUNDS};
use crate::prom::{Kind, PromWriter};
use baselines::{
    GreedyConfig, GreedyPriority, GreedyRouter, RandomPriorityRouter, StoreForwardRouter,
};
use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_sim::{
    route_streaming_observed, AdmissionControl, Router, SnapshotReader, StreamPriority,
    StreamingConfig,
};
use hotpotato_trace::{report_json, rollup_doc, Rollup};
use rand_chacha::ChaCha8Rng;
use routing_core::spec::{EngineKind, RunSpec};
use routing_core::RoutingProblem;
use std::sync::Arc;
use std::thread::JoinHandle;

/// One run to host.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// What to simulate.
    pub spec: RunSpec,
    /// Publish a snapshot every this many steps (min 1).
    pub publish_every: u64,
    /// Bucket cap of the run's rollup aggregator.
    pub rollup_cap: usize,
    /// Per-step sleep in microseconds (0 = full speed). Lets CI stretch
    /// a short run far enough to scrape it mid-flight.
    pub throttle_us: u64,
    /// Streaming admission control: in-flight cap and injection-queue
    /// bound (ignored by batch runs).
    pub admission: AdmissionControl,
}

impl RunConfig {
    /// Default cadences for `spec`: publish every 64 steps, 64 rollup
    /// buckets, no throttle, default admission bounds.
    pub fn new(spec: RunSpec) -> Self {
        RunConfig {
            spec,
            publish_every: 64,
            rollup_cap: 64,
            throttle_us: 0,
            admission: AdmissionControl::default(),
        }
    }
}

/// Builds the router the CLI would build for `algo` (default
/// configurations; `record` off — the service audits nothing offline).
/// `engine` selects the Busch router's substrate; the baselines run on
/// the scalar engine regardless.
pub fn build_router(
    algo: &str,
    problem: &RoutingProblem,
    engine: EngineKind,
) -> Result<Box<dyn Router>, String> {
    Ok(match algo {
        "busch" => Box::new(BuschRouter::with_config(BuschConfig::with_engine(
            Params::auto(problem),
            engine,
        ))),
        "greedy" | "ftg" => Box::new(GreedyRouter::with_config(GreedyConfig {
            priority: if algo == "ftg" {
                GreedyPriority::FurthestToGo
            } else {
                GreedyPriority::Uniform
            },
            ..Default::default()
        })),
        "rank" => Box::new(RandomPriorityRouter::default()),
        "sf" => Box::new(StoreForwardRouter::fifo()),
        "sfrank" => Box::new(StoreForwardRouter::random_rank(problem.congestion() as u64)),
        other => return Err(format!("unknown algorithm '{other}'")),
    })
}

/// A hosted run: its identity plus the reader half of its exchange.
struct RunHandle {
    name: String,
    spec: RunSpec,
    reader: SnapshotReader<LiveSnapshot>,
    join: Option<JoinHandle<()>>,
}

/// The run registry behind the HTTP handler.
pub struct Service {
    /// Sorted by name at launch, so every endpoint renders runs in a
    /// deterministic order.
    runs: Vec<RunHandle>,
}

impl Service {
    /// Validates all configs, then spawns one simulation thread per run.
    /// Fails (without spawning anything) on the first bad spec or a
    /// duplicate run name.
    pub fn launch(configs: Vec<RunConfig>) -> Result<Service, String> {
        if configs.is_empty() {
            return Err("no runs configured".into());
        }
        // Parse everything first: a service with half its runs dead on
        // arrival helps nobody.
        let mut prepared: Vec<(String, RunConfig, Arc<RoutingProblem>, ChaCha8Rng)> =
            Vec::with_capacity(configs.len());
        for config in configs {
            let spec = &config.spec;
            // The single instantiation path shared with the CLI: one rng
            // seeds the workload and then keeps driving the run, so a
            // served run is trajectory-identical to `hotpotato route`
            // with the same spec.
            let (_topo, problem, rng) = spec.instantiate()?;
            // Validate the algorithm/arrival combination now; the thread
            // rebuilds the router (it is cheap and `Box<dyn Router>` is
            // not `Send`).
            match spec.arrival_process()? {
                Some(_) => {
                    StreamPriority::for_algo(&spec.algo)?;
                }
                None => {
                    build_router(&spec.algo, &problem, spec.engine_kind())?;
                }
            }
            let name = spec.name();
            if prepared.iter().any(|(n, ..)| *n == name) {
                return Err(format!("duplicate run '{name}'"));
            }
            prepared.push((name, config, problem, rng));
        }
        prepared.sort_by(|a, b| a.0.cmp(&b.0));

        let mut runs = Vec::with_capacity(prepared.len());
        for (name, config, problem, mut rng) in prepared {
            let (observer, reader) =
                LiveObserver::new(&problem, config.publish_every, config.rollup_cap);
            let mut observer = observer.with_throttle_us(config.throttle_us);
            let spec = config.spec.clone();
            let admission = config.admission;
            let join = std::thread::spawn(move || {
                match spec.arrival_process().expect("arrival validated at launch") {
                    Some(process) => {
                        // Streaming: draw the arrival schedule from the
                        // post-workload rng, then drive the open-ended
                        // injection loop from the same stream.
                        let schedule = process.schedule(problem.num_packets(), &mut rng);
                        let cfg = StreamingConfig {
                            admission,
                            priority: StreamPriority::for_algo(&spec.algo)
                                .expect("algo validated at launch"),
                            ..StreamingConfig::default()
                        };
                        let outcome = route_streaming_observed(
                            &problem,
                            &schedule,
                            &cfg,
                            &mut rng,
                            &mut observer,
                        );
                        observer.finish(&outcome.stats);
                    }
                    None => {
                        let router = build_router(&spec.algo, &problem, spec.engine_kind())
                            .expect("algo validated at launch");
                        let outcome = router.route(&problem, &mut rng, &mut observer);
                        observer.finish(&outcome.stats);
                    }
                }
            });
            runs.push(RunHandle {
                name,
                spec: config.spec,
                reader,
                join: Some(join),
            });
        }
        Ok(Service { runs })
    }

    /// The hosted run names, in serving order.
    pub fn run_names(&self) -> Vec<&str> {
        self.runs.iter().map(|r| r.name.as_str()).collect()
    }

    /// The snapshot reader of a run, if hosted.
    pub fn reader(&self, name: &str) -> Option<&SnapshotReader<LiveSnapshot>> {
        self.runs.iter().find(|r| r.name == name).map(|r| &r.reader)
    }

    /// Blocks until every simulation thread has quiesced (final snapshots
    /// flushed). Endpoints keep serving the final state afterwards.
    pub fn wait(&mut self) {
        for run in &mut self.runs {
            if let Some(join) = run.join.take() {
                // A panicked run thread still leaves a coherent (if
                // unfinished) snapshot; serving beats crashing the server.
                let _ = join.join();
            }
        }
    }

    /// Routes one request. Pure read; callable from any thread.
    // lint: no-panic
    pub fn handle(&self, req: &Request) -> Response {
        let path = req.path.split('?').next().unwrap_or("");
        match path {
            "/healthz" => Response::ok("text/plain; charset=utf-8", "ok\n".into()),
            "/runs" => Response::json(self.render_runs()),
            "/metrics" => Response::ok(EXPOSITION_CONTENT_TYPE, self.render_metrics()),
            _ => match path.strip_prefix("/rollup/") {
                Some(name) => match self.reader(name) {
                    Some(reader) => Response::json(render_rollup(name, reader)),
                    None => Response::not_found(&format!("run '{name}'")),
                },
                None => Response::not_found(path),
            },
        }
    }

    /// `/runs`: identity and progress of every hosted run.
    fn render_runs(&self) -> String {
        let runs: Vec<serde::Value> = self
            .runs
            .iter()
            .map(|run| {
                let (seq, steps, finished) =
                    run.reader.acquire(|seq, s| (seq, s.steps, s.finished));
                serde_json::json!({
                    "run": run.name.clone(),
                    "topo": run.spec.topo.clone(),
                    "workload": run.spec.workload.clone(),
                    "algo": run.spec.algo.clone(),
                    "seed": run.spec.seed,
                    "arrival": run.spec.arrival.clone().unwrap_or_default(),
                    "seq": seq,
                    "steps": steps,
                    "finished": finished,
                })
            })
            .collect();
        let mut body = serde::Value::Array(runs).to_compact_string();
        body.push('\n');
        body
    }

    /// `/metrics`: the full exposition across runs, one family at a
    /// time so every metric name appears exactly once.
    fn render_metrics(&self) -> String {
        // Clone each run's snapshot once, outside the per-family loops:
        // n_runs slot locks total, and every family renders from the
        // same coherent view.
        let snaps: Vec<(&str, u64, LiveSnapshot)> = self
            .runs
            .iter()
            .map(|run| {
                let (seq, snap) = run.reader.acquire(|seq, s| (seq, s.clone()));
                (run.name.as_str(), seq, snap)
            })
            .collect();

        let mut w = PromWriter::new();
        let counter = |w: &mut PromWriter, name, help, field: &dyn Fn(&LiveSnapshot) -> u64| {
            w.family(name, help, Kind::Counter);
            for (run, _, s) in &snaps {
                w.sample(name, &[("run", run)], field(s) as f64);
            }
        };
        counter(
            &mut w,
            "hotpotato_steps_total",
            "Simulation steps completed.",
            &|s| s.steps,
        );
        counter(
            &mut w,
            "hotpotato_moves_total",
            "Packet moves staged (injections included).",
            &|s| s.moves,
        );
        counter(
            &mut w,
            "hotpotato_deliveries_total",
            "Packets delivered (trivial deliveries included).",
            &|s| s.delivered,
        );
        counter(
            &mut w,
            "hotpotato_trivial_deliveries_total",
            "Source==destination deliveries.",
            &|s| s.trivial,
        );
        counter(
            &mut w,
            "hotpotato_injected_total",
            "Packets injected into the network.",
            &|s| s.injected,
        );
        counter(
            &mut w,
            "hotpotato_oscillations_total",
            "Wait-state oscillation moves.",
            &|s| s.oscillations,
        );
        counter(
            &mut w,
            "hotpotato_arrivals_total",
            "Streaming packets surfaced by the arrival process (0 in batch mode).",
            &|s| s.arrivals,
        );
        counter(
            &mut w,
            "hotpotato_dropped_total",
            "Streaming packets dropped by admission control (queue full).",
            &|s| s.drops,
        );

        w.family(
            "hotpotato_deflections_total",
            "Deflections by kind (safe = backward edge recycling, Lemma 2.1).",
            Kind::Counter,
        );
        for (run, _, s) in &snaps {
            w.sample(
                "hotpotato_deflections_total",
                &[("run", run), ("kind", "safe")],
                s.safe_deflections as f64,
            );
            w.sample(
                "hotpotato_deflections_total",
                &[("run", run), ("kind", "unsafe")],
                s.unsafe_deflections as f64,
            );
        }

        w.family(
            "hotpotato_deflections_per_packet",
            "Distribution of per-packet deflection counts.",
            Kind::Histogram,
        );
        let bounds: Vec<f64> = DEFL_BUCKET_BOUNDS.iter().map(|&b| f64::from(b)).collect();
        for (run, _, s) in &snaps {
            w.histogram(
                "hotpotato_deflections_per_packet",
                &[("run", run)],
                &bounds,
                &s.defl_hist,
                s.total_deflections() as f64,
            );
        }

        w.family(
            "hotpotato_delivery_latency_steps",
            "Distribution of delivery latencies (steps from injection to absorption).",
            Kind::Histogram,
        );
        let lat_bounds: Vec<f64> = LAT_BUCKET_BOUNDS.iter().map(|&b| b as f64).collect();
        for (run, _, s) in &snaps {
            w.histogram(
                "hotpotato_delivery_latency_steps",
                &[("run", run)],
                &lat_bounds,
                &s.lat_hist,
                s.lat_sum as f64,
            );
        }

        w.family(
            "hotpotato_delivery_latency_window_steps",
            "Sliding-window latency percentiles over the most recent deliveries.",
            Kind::Gauge,
        );
        for (run, _, s) in &snaps {
            let mut window = s.lat_window.clone();
            window.sort_unstable();
            for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                w.sample(
                    "hotpotato_delivery_latency_window_steps",
                    &[("run", run), ("quantile", label)],
                    percentile(&window, q),
                );
            }
        }

        let gauge = |w: &mut PromWriter, name, help, field: &dyn Fn(&LiveSnapshot) -> f64| {
            w.family(name, help, Kind::Gauge);
            for (run, _, s) in &snaps {
                w.sample(name, &[("run", run)], field(s));
            }
        };
        gauge(
            &mut w,
            "hotpotato_packets",
            "Packets in the instance.",
            &|s| s.packets as f64,
        );
        gauge(
            &mut w,
            "hotpotato_active_packets",
            "In-flight packets after the last step.",
            &|s| s.active as f64,
        );
        gauge(
            &mut w,
            "hotpotato_phases",
            "Phases started (0 for phase-less routers).",
            &|s| s.phases as f64,
        );
        gauge(
            &mut w,
            "hotpotato_injection_queue_depth",
            "Streaming packets arrived but not yet admitted or dropped.",
            &|s| s.queue_depth() as f64,
        );
        gauge(
            &mut w,
            "hotpotato_congestion_bound_ln",
            "Lemma 2.2 ln(L*N) per-set congestion bound.",
            &|s| s.ln_ln_bound,
        );
        gauge(
            &mut w,
            "hotpotato_run_finished",
            "1 once the run quiesced.",
            &|s| {
                if s.finished {
                    1.0
                } else {
                    0.0
                }
            },
        );

        w.family(
            "hotpotato_level_occupancy",
            "Live per-level packet count.",
            Kind::Gauge,
        );
        per_level(&mut w, "hotpotato_level_occupancy", &snaps, |s| {
            &s.occupancy
        });
        w.family(
            "hotpotato_level_occupancy_watermark",
            "Max per-level occupancy observed at any step end.",
            Kind::Gauge,
        );
        per_level(&mut w, "hotpotato_level_occupancy_watermark", &snaps, |s| {
            &s.level_watermark
        });

        w.family(
            "hotpotato_set_congestion_initial",
            "Initial per-frontier-set congestion.",
            Kind::Gauge,
        );
        per_set(&mut w, "hotpotato_set_congestion_initial", &snaps, |s| {
            &s.congestion_initial
        });
        w.family(
            "hotpotato_set_congestion_watermark",
            "Max audited per-frontier-set congestion across phase ends.",
            Kind::Gauge,
        );
        per_set(&mut w, "hotpotato_set_congestion_watermark", &snaps, |s| {
            &s.congestion_watermark
        });

        w.family(
            "hotpotato_snapshot_seq",
            "Sequence number of the served snapshot.",
            Kind::Gauge,
        );
        for (run, seq, _) in &snaps {
            w.sample("hotpotato_snapshot_seq", &[("run", run)], *seq as f64);
        }
        w.finish()
    }
}

/// Nearest-rank percentile of an ascending-sorted window (`NaN` when
/// the window is empty — no deliveries yet).
fn percentile(sorted: &[u64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).map_or(f64::NAN, |&v| v as f64)
}

/// Indexed gauge samples with a `level` label.
fn per_level(
    w: &mut PromWriter,
    name: &str,
    snaps: &[(&str, u64, LiveSnapshot)],
    field: impl Fn(&LiveSnapshot) -> &[u32],
) {
    for (run, _, s) in snaps {
        for (level, &v) in field(s).iter().enumerate() {
            let level = level.to_string();
            w.sample(name, &[("run", run), ("level", &level)], f64::from(v));
        }
    }
}

/// Indexed gauge samples with a `set` label.
fn per_set(
    w: &mut PromWriter,
    name: &str,
    snaps: &[(&str, u64, LiveSnapshot)],
    field: impl Fn(&LiveSnapshot) -> &[u32],
) {
    for (run, _, s) in snaps {
        for (set, &v) in field(s).iter().enumerate() {
            let set = set.to_string();
            w.sample(name, &[("run", run), ("set", &set)], f64::from(v));
        }
    }
}

/// `/rollup/<run>`: the schema-versioned [`Rollup`] envelope around the
/// snapshot's aggregator state, rendered through the *same*
/// [`report_json`] the in-process [`StreamingAggregator::to_json`] uses —
/// which is what makes the quiesce-consistency guarantee structural.
///
/// [`StreamingAggregator::to_json`]: hotpotato_trace::StreamingAggregator::to_json
fn render_rollup(name: &str, reader: &SnapshotReader<LiveSnapshot>) -> String {
    let envelope = reader.acquire(|seq, s| {
        let rollup = report_json(
            s.rollup_keyed_by,
            s.rollup_cap,
            s.rollup_scale,
            s.rollup_merges,
            &s.rollup_totals,
            &s.rollup_buckets,
        );
        rollup_doc(&Rollup {
            schema: hotpotato_trace::SCHEMA_VERSION,
            run: name.to_owned(),
            seq,
            finished: s.finished,
            rollup,
        })
    });
    let mut body = envelope.to_compact_string();
    body.push('\n');
    body
}

/// The `Arc`-wrapped handler the HTTP server wants.
pub fn into_handler(service: Service) -> Arc<dyn Fn(&Request) -> Response + Send + Sync> {
    let service = Arc::new(service);
    Arc::new(move |req: &Request| service.handle(req))
}
