//! Prometheus text exposition (format 0.0.4), dependency-free.
//!
//! The encoder is a small builder over `String`: callers declare a
//! metric family (`# HELP` / `# TYPE` header) and then append samples.
//! Output is deterministic — families and samples appear exactly in the
//! order the caller wrote them, so two encodes of the same state are
//! byte-identical (the property the scrape tests pin).
//!
//! Histograms follow the exposition rules: bucket counts are
//! *cumulative*, a `+Inf` bucket always closes the series, and `_sum` /
//! `_count` accompany the buckets.

use std::fmt::Write as _;

/// Escapes a label value: `\` → `\\`, `"` → `\"`, newline → `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Renders a sample value: integers without a fraction, floats via the
/// shortest roundtrip `{}` formatting, non-finite as `+Inf`/`-Inf`/`NaN`.
pub fn format_value(v: f64) -> String {
    if v.is_nan() {
        return "NaN".into();
    }
    if v.is_infinite() {
        return if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Metric family kinds in the exposition `# TYPE` vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing value.
    Counter,
    /// Value that can go up and down.
    Gauge,
    /// Cumulative-bucket distribution.
    Histogram,
}

impl Kind {
    fn name(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// Deterministic exposition builder.
#[derive(Default)]
pub struct PromWriter {
    out: String,
}

impl PromWriter {
    /// A fresh, empty exposition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a metric family: one `# HELP` and one `# TYPE` line.
    /// Call once per family, before its samples.
    pub fn family(&mut self, name: &str, help: &str, kind: Kind) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {}", kind.name());
    }

    /// Appends one sample line with the given labels (values are
    /// escaped here; keys must already be valid label names).
    pub fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        self.write_labels(labels, None);
        let _ = writeln!(self.out, " {}", format_value(value));
    }

    /// Appends a full histogram series: cumulative `_bucket` lines for
    /// each upper bound in `bounds`, the closing `+Inf` bucket, then
    /// `_sum` and `_count`. `counts[i]` is the *per-bucket* (not yet
    /// cumulative) count of observations `<= bounds[i]` and greater than
    /// the previous bound; `counts` may carry one extra element for
    /// observations above the last bound.
    pub fn histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
        counts: &[u64],
        sum: f64,
    ) {
        debug_assert!(
            counts.len() == bounds.len() || counts.len() == bounds.len() + 1,
            "counts must cover the bounds (plus optionally an overflow bucket)"
        );
        let mut cumulative = 0u64;
        for (i, &bound) in bounds.iter().enumerate() {
            cumulative += counts.get(i).copied().unwrap_or(0);
            self.out.push_str(name);
            self.out.push_str("_bucket");
            self.write_labels(labels, Some(&format_value(bound)));
            let _ = writeln!(self.out, " {cumulative}");
        }
        cumulative += counts.get(bounds.len()).copied().unwrap_or(0);
        self.out.push_str(name);
        self.out.push_str("_bucket");
        self.write_labels(labels, Some("+Inf"));
        let _ = writeln!(self.out, " {cumulative}");
        self.out.push_str(name);
        self.out.push_str("_sum");
        self.write_labels(labels, None);
        let _ = writeln!(self.out, " {}", format_value(sum));
        self.out.push_str(name);
        self.out.push_str("_count");
        self.write_labels(labels, None);
        let _ = writeln!(self.out, " {cumulative}");
    }

    /// The finished exposition text.
    pub fn finish(self) -> String {
        self.out
    }

    fn write_labels(&mut self, labels: &[(&str, &str)], le: Option<&str>) {
        if labels.is_empty() && le.is_none() {
            return;
        }
        self.out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                self.out.push(',');
            }
            first = false;
            let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
        }
        if let Some(le) = le {
            if !first {
                self.out.push(',');
            }
            let _ = write!(self.out, "le=\"{le}\"");
        }
        self.out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("two\nlines"), "two\\nlines");
    }

    #[test]
    fn values_render_integers_without_fraction() {
        assert_eq!(format_value(3.0), "3");
        assert_eq!(format_value(-2.0), "-2");
        assert_eq!(format_value(2.5), "2.5");
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }

    #[test]
    fn families_and_samples_render_in_call_order() {
        let mut w = PromWriter::new();
        w.family("hp_steps_total", "Steps completed.", Kind::Counter);
        w.sample("hp_steps_total", &[("run", "a")], 10.0);
        w.sample("hp_steps_total", &[("run", "b")], 20.0);
        w.family("hp_active", "In-flight packets.", Kind::Gauge);
        w.sample("hp_active", &[], 3.0);
        assert_eq!(
            w.finish(),
            "# HELP hp_steps_total Steps completed.\n\
             # TYPE hp_steps_total counter\n\
             hp_steps_total{run=\"a\"} 10\n\
             hp_steps_total{run=\"b\"} 20\n\
             # HELP hp_active In-flight packets.\n\
             # TYPE hp_active gauge\n\
             hp_active 3\n"
        );
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_close_with_inf() {
        let mut w = PromWriter::new();
        w.family("hp_defl", "Deflections per packet.", Kind::Histogram);
        // Per-bucket counts 5, 3, 2 with an overflow of 1 → cumulative
        // 5, 8, 10, 11.
        w.histogram(
            "hp_defl",
            &[("run", "a")],
            &[0.0, 1.0, 2.0],
            &[5, 3, 2, 1],
            9.0,
        );
        let text = w.finish();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[2], "hp_defl_bucket{run=\"a\",le=\"0\"} 5");
        assert_eq!(lines[3], "hp_defl_bucket{run=\"a\",le=\"1\"} 8");
        assert_eq!(lines[4], "hp_defl_bucket{run=\"a\",le=\"2\"} 10");
        assert_eq!(lines[5], "hp_defl_bucket{run=\"a\",le=\"+Inf\"} 11");
        assert_eq!(lines[6], "hp_defl_sum{run=\"a\"} 9");
        assert_eq!(lines[7], "hp_defl_count{run=\"a\"} 11");
    }

    #[test]
    fn two_encodes_of_the_same_state_are_byte_identical() {
        let build = || {
            let mut w = PromWriter::new();
            w.family("m", "h", Kind::Gauge);
            w.sample("m", &[("x", "1"), ("y", "2")], 1.5);
            w.histogram("mh", &[], &[1.0], &[2], 2.0);
            w.finish()
        };
        assert_eq!(build(), build());
    }
}
