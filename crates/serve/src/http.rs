//! Minimal dependency-free HTTP/1.1 server over `std::net`.
//!
//! Scope is deliberately tiny: `GET`-only, no keep-alive (every response
//! carries `Connection: close`), no body parsing, one thread per
//! connection. That is exactly what a Prometheus scraper or a `curl`
//! walkthrough needs, and nothing the workspace would have to vendor a
//! dependency for.

use std::io::{self, BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

/// Cap on the request head (request line + headers) a client may send.
/// A peer streaming an endless line would otherwise grow `read_line`'s
/// buffer without bound.
const MAX_REQUEST_HEAD_BYTES: u64 = 16 * 1024;

/// A parsed request line (headers are read and discarded).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Request {
    /// The HTTP method verbatim (`GET`, `HEAD`, …).
    pub method: String,
    /// The request target, e.g. `/metrics` (query strings included).
    pub path: String,
}

/// A response the handler returns; the server adds the framing headers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

/// The content type Prometheus expects for text exposition 0.0.4.
pub const EXPOSITION_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

impl Response {
    /// A `200 OK` with the given body.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A `200 OK` JSON body.
    pub fn json(body: String) -> Self {
        Self::ok("application/json", body)
    }

    /// A `404 Not Found` with a short plain-text reason.
    pub fn not_found(what: &str) -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: format!("not found: {what}\n"),
        }
    }

    /// A `405 Method Not Allowed` (the server is GET-only).
    pub fn method_not_allowed() -> Self {
        Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "only GET is supported\n".into(),
        }
    }
}

/// Reason phrase for the status codes this server emits.
fn status_text(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Internal Server Error",
    }
}

/// Reads and parses one request from the stream: the request line, then
/// headers up to the blank line (discarded — nothing this server does
/// depends on them). The whole head is read through a
/// [`MAX_REQUEST_HEAD_BYTES`] limit; a head cut off at the limit either
/// still parses (GET needs only the first line) or fails as malformed —
/// it can never grow memory unboundedly.
// lint: no-panic
fn read_request(stream: &TcpStream) -> io::Result<Request> {
    let mut reader = BufReader::new(stream.take(MAX_REQUEST_HEAD_BYTES));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    let mut parts = line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m.to_owned(), p.to_owned()),
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "malformed request line",
            ))
        }
    };
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    Ok(Request { method, path })
}

/// Writes `response` with framing headers and closes the connection.
fn write_response(stream: &mut TcpStream, response: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        status_text(response.status),
        response.content_type,
        response.body.len(),
    )?;
    stream.write_all(response.body.as_bytes())?;
    stream.flush()
}

/// Handles one accepted connection end to end. Malformed input is a
/// `400`; a handler that panics despite the no-panic lint is caught and
/// answered with a `500` instead of leaving the peer to hang on a dead
/// thread.
// lint: no-panic
fn handle_connection(mut stream: TcpStream, handler: &dyn Fn(&Request) -> Response) {
    let response = match read_request(&stream) {
        Ok(req) if req.method == "GET" => std::panic::catch_unwind(std::panic::AssertUnwindSafe(
            || handler(&req),
        ))
        .unwrap_or_else(|_| Response {
            status: 500,
            content_type: "text/plain; charset=utf-8",
            body: "internal server error\n".into(),
        }),
        Ok(_) => Response::method_not_allowed(),
        Err(_) => Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "bad request\n".into(),
        },
    };
    // The peer may already be gone; dropping the error is the only
    // sensible reaction for a monitoring endpoint.
    let _ = write_response(&mut stream, &response);
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A bound listener ready to serve.
pub struct HttpServer {
    listener: TcpListener,
    addr: SocketAddr,
}

impl HttpServer {
    /// Binds `addr` (use port `0` for an ephemeral port; the bound
    /// address is available via [`HttpServer::local_addr`]).
    pub fn bind(addr: &str) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(HttpServer { listener, addr })
    }

    /// The address the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Accepts connections forever, one handler thread per connection.
    /// Never returns under normal operation; the process exit (or test
    /// teardown) reaps the detached threads.
    pub fn serve(self, handler: Arc<dyn Fn(&Request) -> Response + Send + Sync>) -> io::Error {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let handler = Arc::clone(&handler);
                    thread::spawn(move || handle_connection(stream, handler.as_ref()));
                }
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => {}
                Err(e) => return e,
            }
        }
    }

    /// Spawns [`HttpServer::serve`] on a background thread and returns
    /// the bound address — the shape tests and the CLI both want.
    pub fn serve_in_background(
        self,
        handler: Arc<dyn Fn(&Request) -> Response + Send + Sync>,
    ) -> SocketAddr {
        let addr = self.addr;
        thread::spawn(move || self.serve(handler));
        addr
    }
}

/// A minimal blocking GET client for the same dialect the server speaks
/// (used by the bench gate's `--scrape` mode and the integration tests).
/// Returns `(status, body)`.
pub fn http_get(addr: &str, path: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line)?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    loop {
        let mut header = String::new();
        let n = reader.read_line(&mut header)?;
        if n == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body)?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_round_trips_a_get() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.serve_in_background(Arc::new(|req: &Request| {
            Response::ok("text/plain; charset=utf-8", format!("path={}\n", req.path))
        }));
        let (status, body) = http_get(&addr.to_string(), "/hello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "path=/hello\n");
    }

    #[test]
    fn non_get_methods_are_rejected() {
        let server = HttpServer::bind("127.0.0.1:0").unwrap();
        let addr = server.serve_in_background(Arc::new(|_req: &Request| {
            Response::ok("text/plain; charset=utf-8", "ok\n".into())
        }));
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "POST /x HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
        stream.flush().unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        assert!(status_line.starts_with("HTTP/1.1 405"), "{status_line}");
    }
}
