//! Live monitoring service for hot-potato simulations.
//!
//! Everything the workspace could observe so far was post-hoc: metrics
//! JSON after the run, JSONL traces replayed offline. This crate makes a
//! *running* simulation observable. `hotpotato serve` hosts one or more
//! runs (each on its own thread) and serves, over a dependency-free
//! `std::net` HTTP/1.1 listener:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4): steps,
//!   moves, deliveries, deflection histograms, per-level occupancy
//!   watermarks, and per-frontier-set congestion watermarks against the
//!   `ln(L·N)` Lemma 2.2 bound, labeled by run;
//! * `GET /rollup/<run>` — the run's bounded-memory
//!   [`StreamingAggregator`] snapshot as schema-versioned JSON (the
//!   [`hotpotato_trace::Rollup`] envelope);
//! * `GET /runs` — the hosted runs and their specs;
//! * `GET /healthz` — liveness.
//!
//! [`fleet`] mode replaces the per-run host with a sweep executor: a
//! queue of run specs fans out over the shared worker pool and every
//! completed run folds into a cross-run [`FleetAggregator`] served at
//! `GET /fleet` (per-cell CIs plus the scaling fit) and
//! `GET /fleet/progress` (queue state, ETA, per-worker utilization).
//!
//! [`FleetAggregator`]: hotpotato_trace::FleetAggregator
//!
//! The engine→service handoff is the double-buffered
//! [`hotpotato_sim::SnapshotPublisher`] exchange: the simulation thread
//! publishes a [`LiveSnapshot`] every `publish_every` steps without ever
//! blocking (contended publishes are skipped, not waited on), and HTTP
//! handler threads [`acquire`](hotpotato_sim::SnapshotReader::acquire)
//! untorn snapshots. The exchange core is model-checked under the
//! vendored loom scheduler in `tests/loom_serve.rs`.
//!
//! [`StreamingAggregator`]: hotpotato_trace::StreamingAggregator

pub mod fleet;
pub mod http;
pub mod live;
pub mod prom;
pub mod service;

pub use fleet::{
    into_fleet_handler, run_fleet_router, run_fleet_spec, FleetConfig, FleetService, FleetSnapshot,
};
pub use http::{Request, Response};
pub use live::{LiveObserver, LiveSnapshot};
pub use service::{RunConfig, Service};
