//! Fleet mode: a sweep of run specs executed on the shared worker pool,
//! with cross-run aggregation served live.
//!
//! `hotpotato serve --fleet` queues every spec a `--sweep` expression
//! expands to, fans them out over [`hotpotato_sim::pool_core`] workers,
//! and folds each completed run — executed fully in memory through the
//! same meta/stats trace envelope the CLI writes with `--trace-out`,
//! then parsed, analyzed, and replay-verified — into a
//! [`FleetAggregator`]. The coordinator publishes the whole aggregation
//! through the loom-checked snapshot exchange after every event, so HTTP
//! threads serve untorn views mid-sweep:
//!
//! * `GET /fleet` — the schema-versioned cross-run rollup: per-(topo,
//!   algo, size) `steps/(C+L)` distributions with bootstrap 95% CIs and
//!   the log-log scaling fit (the empirical Theorem 2.6 verdict);
//! * `GET /fleet/progress` — queued/running/done counts, ETA, and
//!   per-worker utilization;
//! * `GET /metrics` — the standard exposition families aggregated under
//!   `run="fleet"` plus fleet-specific families (run counters, the
//!   cross-run ratio histogram, the fit-exponent gauge);
//! * `GET /healthz` — liveness.
//!
//! [`FleetAggregator`]: hotpotato_trace::FleetAggregator

use crate::http::{Request, Response, EXPOSITION_CONTENT_TYPE};
use crate::live::DEFL_BUCKET_BOUNDS;
use crate::prom::{Kind, PromWriter};
use crate::service::build_router;
use hotpotato_sim::pool_core::{configured_threads, PoolCore};
use hotpotato_sim::{
    route_streaming_observed, snapshot_exchange, JsonlTraceObserver, RouteStats, Router,
    SnapshotPublisher, SnapshotReader, StreamPriority, StreamingConfig,
};
use hotpotato_trace::fleet::{FleetAggregator, FleetSample, RATIO_BUCKET_BOUNDS};
use hotpotato_trace::{analyze, schema, verify_trace, Trace};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::spec::RunSpec;
use routing_core::RoutingProblem;
use serde_json::json;
use std::io::Write as _;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// A fleet sweep to execute and serve.
#[derive(Clone, Debug)]
pub struct FleetConfig {
    /// The expanded sweep, in submission order.
    pub specs: Vec<RunSpec>,
    /// Worker threads (0 = `HOTPOTATO_THREADS` / available parallelism).
    pub workers: usize,
    /// Replay-verify every run's trace (the zero-violations evidence;
    /// roughly doubles per-run cost).
    pub verify: bool,
    /// Artificial delay in milliseconds before each run starts. Lets CI
    /// stretch a small sweep far enough to scrape it mid-flight.
    pub throttle_ms: u64,
}

impl FleetConfig {
    /// Verify on, auto workers, no throttle.
    pub fn new(specs: Vec<RunSpec>) -> Self {
        FleetConfig {
            specs,
            workers: 0,
            verify: true,
            throttle_ms: 0,
        }
    }
}

/// What the coordinator publishes after every sweep event: the entire
/// aggregation plus progress counters. Cloned whole through the
/// exchange — fleet cadence is per *run*, not per step, so the copy is
/// off any hot path.
#[derive(Clone)]
pub struct FleetSnapshot {
    /// The cross-run aggregation so far.
    pub agg: FleetAggregator,
    /// Sweep size.
    pub total: u64,
    /// Runs currently executing on a worker.
    pub running: u64,
    /// Completed runs per worker (index = worker).
    pub per_worker: Vec<u64>,
    /// Whether each worker is mid-run right now.
    pub busy: Vec<bool>,
    /// First few run failure messages, in completion order.
    pub errors: Vec<String>,
    /// Coordinator wall-clock milliseconds since launch, stamped at
    /// publish time (telemetry only — never feeds results).
    pub elapsed_ms: u64,
    /// True once every run completed and the pool quiesced.
    pub finished: bool,
}

impl FleetSnapshot {
    fn empty(total: u64, workers: usize) -> FleetSnapshot {
        FleetSnapshot {
            agg: FleetAggregator::new(),
            total,
            running: 0,
            per_worker: vec![0; workers],
            busy: vec![false; workers],
            errors: Vec::new(),
            elapsed_ms: 0,
            finished: false,
        }
    }

    /// Runs finished (delivered a sample or failed).
    pub fn done(&self) -> u64 {
        self.agg.runs() + self.agg.failed()
    }
}

/// Executes one sweep run fully in memory and distills it into a
/// [`FleetSample`]: meta envelope + every recorded event + stats
/// envelope, re-parsed through the strict schema, analyzed, and (when
/// `verify`) replay-verified. Fleet analytics are therefore genuinely
/// trace-derived — the same evidence chain `hotpotato trace verify`
/// audits offline. The bench harness reuses this to build `t1`/`t8`
/// from fleet artifacts.
pub fn run_fleet_spec(spec: &RunSpec, verify: bool) -> Result<FleetSample, String> {
    let (topo, problem, mut rng) = spec.instantiate()?;
    let meta = schema::Meta {
        schema: schema::SCHEMA_VERSION,
        topo: spec.topo.clone(),
        workload: spec.workload.clone(),
        algo: spec.algo.clone(),
        seed: spec.seed,
        arrival: spec.arrival.clone().unwrap_or_default(),
        packets: problem.num_packets() as u64,
        levels: topo.net.num_levels() as u64,
        congestion: u64::from(problem.congestion()),
        dilation: u64::from(problem.dilation()),
    };
    let mut buf: Vec<u8> = Vec::new();
    writeln!(buf, "{}", schema::meta_line(&meta)).expect("vec sink");
    let mut obs = JsonlTraceObserver::with_snapshots(buf, &problem);
    let stats = match spec.arrival_process()? {
        Some(process) => {
            let schedule = process.schedule(problem.num_packets(), &mut rng);
            let cfg = StreamingConfig {
                priority: StreamPriority::for_algo(&spec.algo)?,
                ..StreamingConfig::default()
            };
            route_streaming_observed(&problem, &schedule, &cfg, &mut rng, &mut obs).stats
        }
        None => {
            let router = build_router(&spec.algo, &problem, spec.engine_kind())?;
            router.route(&problem, &mut rng, &mut obs).stats
        }
    };
    seal_envelope(obs, &stats, verify)
}

/// Executes one run of an explicit router on a fixed instance through
/// the same in-memory trace envelope as [`run_fleet_spec`], labelled
/// with `topo`/`workload` for the sample's cell key. The bench harness
/// uses this for parameter points the spec grammar cannot express
/// (`t8`'s custom frame heights and round lengths); the routing rng is
/// seeded fresh from `seed`.
pub fn run_fleet_router(
    router: &dyn Router,
    problem: &Arc<RoutingProblem>,
    topo: &str,
    workload: &str,
    seed: u64,
    verify: bool,
) -> Result<FleetSample, String> {
    let meta = schema::Meta {
        schema: schema::SCHEMA_VERSION,
        topo: topo.to_string(),
        workload: workload.to_string(),
        algo: router.name().to_string(),
        seed,
        arrival: String::new(),
        packets: problem.num_packets() as u64,
        levels: problem.network().num_levels() as u64,
        congestion: u64::from(problem.congestion()),
        dilation: u64::from(problem.dilation()),
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut buf: Vec<u8> = Vec::new();
    writeln!(buf, "{}", schema::meta_line(&meta)).expect("vec sink");
    let mut obs = JsonlTraceObserver::with_snapshots(buf, problem);
    let stats = router.route(problem, &mut rng, &mut obs).stats;
    seal_envelope(obs, &stats, verify)
}

/// The shared envelope tail: closes the trace sink, appends the stats
/// line, re-parses through the strict schema, analyzes, and (when
/// `verify`) replay-verifies. Two independent violation sources fold
/// into one count: the router's own phase-end invariant audit (the
/// `invariant_violations` counter; absent = zero for routers that do
/// not audit) and the offline replay of the whole trace against the
/// bufferless laws.
fn seal_envelope(
    obs: JsonlTraceObserver<Vec<u8>>,
    stats: &RouteStats,
    verify: bool,
) -> Result<FleetSample, String> {
    let mut buf = obs.finish().map_err(|e| format!("trace sink: {e}"))?;
    writeln!(buf, "{}", schema::stats_line(stats)).expect("vec sink");
    let text = String::from_utf8(buf).map_err(|_| "trace is not UTF-8".to_string())?;
    let trace = Trace::parse(&text).map_err(|e| format!("trace parse: {e}"))?;
    let audited = stats
        .counters
        .get("invariant_violations")
        .copied()
        .unwrap_or(0);
    let violations = audited
        + if verify {
            match verify_trace(&trace) {
                Ok(_) => 0,
                Err(_) => 1,
            }
        } else {
            0
        };
    let analysis = analyze(&trace);
    FleetSample::from_trace(&trace, &analysis, violations)
}

/// What a worker reports back to the coordinator.
enum FleetMsg {
    Started {
        worker: usize,
    },
    Done {
        worker: usize,
        result: Result<FleetSample, String>,
    },
}

/// The index baked into a pool worker's thread name, for per-worker
/// utilization accounting.
fn worker_index() -> usize {
    std::thread::current()
        .name()
        .and_then(|n| n.strip_prefix("hotpotato-sweep-"))
        .and_then(|i| i.parse().ok())
        .unwrap_or(0)
}

/// The running fleet service: the coordinator's reader half plus enough
/// identity to render endpoints.
pub struct FleetService {
    reader: SnapshotReader<FleetSnapshot>,
    total: u64,
    workers: usize,
    join: Option<JoinHandle<()>>,
}

impl FleetService {
    /// Spawns the coordinator (which owns the worker pool) and returns
    /// immediately; endpoints serve the live aggregation from the first
    /// request on.
    pub fn launch(config: FleetConfig) -> Result<FleetService, String> {
        if config.specs.is_empty() {
            return Err("fleet sweep is empty".into());
        }
        let workers = if config.workers == 0 {
            configured_threads()
        } else {
            config.workers
        };
        let total = config.specs.len() as u64;
        let (publisher, reader) = snapshot_exchange(
            FleetSnapshot::empty(total, workers),
            FleetSnapshot::empty(total, workers),
        );
        let join = std::thread::Builder::new()
            .name("hotpotato-fleet".into())
            .spawn(move || coordinate(config, workers, publisher))
            .map_err(|e| format!("spawn fleet coordinator: {e}"))?;
        Ok(FleetService {
            reader,
            total,
            workers,
            join: Some(join),
        })
    }

    /// Sweep size.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Worker threads executing the sweep.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The reader half, for tests that want raw snapshots.
    pub fn reader(&self) -> &SnapshotReader<FleetSnapshot> {
        &self.reader
    }

    /// Blocks until the sweep completed and the final snapshot flushed.
    pub fn wait(&mut self) {
        if let Some(join) = self.join.take() {
            // A panicked coordinator leaves the last published snapshot
            // serving; a half-dead observatory beats a crashed one.
            let _ = join.join();
        }
    }

    /// Routes one request. Pure read; callable from any thread.
    // lint: no-panic
    pub fn handle(&self, req: &Request) -> Response {
        let path = req.path.split('?').next().unwrap_or("");
        match path {
            "/healthz" => Response::ok("text/plain; charset=utf-8", "ok\n".into()),
            "/fleet" => Response::json(self.render_fleet()),
            "/fleet/progress" => Response::json(self.render_progress()),
            "/metrics" => Response::ok(EXPOSITION_CONTENT_TYPE, self.render_metrics()),
            _ => Response::not_found(path),
        }
    }

    /// `/fleet`: the cross-run rollup document.
    fn render_fleet(&self) -> String {
        let doc = self.reader.acquire(|_, s| s.agg.to_json());
        let mut body = doc.to_compact_string();
        body.push('\n');
        body
    }

    /// `/fleet/progress`: queue state, ETA, per-worker utilization. The
    /// ETA extrapolates the published elapsed time over the remaining
    /// runs — pure arithmetic on snapshot fields, so rendering stays
    /// deterministic given a snapshot.
    fn render_progress(&self) -> String {
        let doc = self.reader.acquire(|seq, s| {
            let done = s.done();
            let queued = s.total.saturating_sub(done + s.running);
            let eta_ms = if done > 0 && !s.finished {
                json!(s.elapsed_ms.saturating_mul(s.total - done) / done)
            } else {
                json!(null)
            };
            let workers: Vec<serde::Value> = s
                .per_worker
                .iter()
                .zip(&s.busy)
                .enumerate()
                .map(
                    |(i, (&runs, &busy))| json!({ "worker": i as u64, "runs": runs, "busy": busy }),
                )
                .collect();
            json!({
                "schema": hotpotato_trace::FLEET_SCHEMA_VERSION,
                "kind": "fleet-progress",
                "seq": seq,
                "total": s.total,
                "queued": queued,
                "running": s.running,
                "done": done,
                "failed": s.agg.failed(),
                "violations": s.agg.violations(),
                "elapsed_ms": s.elapsed_ms,
                "eta_ms": eta_ms,
                "workers": serde::Value::Array(workers),
                "errors": serde::Value::Array(
                    s.errors.iter().map(|e| json!(e.clone())).collect()
                ),
                "finished": s.finished,
            })
        });
        let mut body = doc.to_compact_string();
        body.push('\n');
        body
    }

    /// `/metrics`: the standard families the scrape gate requires, every
    /// sample aggregated under `run="fleet"`, plus the fleet-specific
    /// families.
    fn render_metrics(&self) -> String {
        let (seq, s) = self.reader.acquire(|seq, s| (seq, s.clone()));
        let sums = {
            let mut sums = (0u64, 0u64, 0u64, 0u64);
            for sample in s.agg.samples() {
                sums.0 += sample.steps;
                sums.1 += sample.moves;
                sums.2 += sample.delivered;
                sums.3 += sample.deflections;
            }
            sums
        };
        let mut w = PromWriter::new();
        let fleet = [("run", "fleet")];
        let counter = |w: &mut PromWriter, name, help, v: u64| {
            w.family(name, help, Kind::Counter);
            w.sample(name, &fleet, v as f64);
        };
        counter(
            &mut w,
            "hotpotato_steps_total",
            "Simulation steps completed (summed over fleet runs).",
            sums.0,
        );
        counter(
            &mut w,
            "hotpotato_moves_total",
            "Packet moves recorded (summed over fleet runs).",
            sums.1,
        );
        counter(
            &mut w,
            "hotpotato_deliveries_total",
            "Packets delivered (summed over fleet runs).",
            sums.2,
        );
        counter(
            &mut w,
            "hotpotato_deflections_total",
            "Deflections (summed over fleet runs).",
            sums.3,
        );

        // Distribution of per-run mean deflections per packet, on the
        // same bounds the live service uses.
        w.family(
            "hotpotato_deflections_per_packet",
            "Distribution of per-run mean deflections per packet.",
            Kind::Histogram,
        );
        let bounds: Vec<f64> = DEFL_BUCKET_BOUNDS.iter().map(|&b| f64::from(b)).collect();
        let mut defl_counts = vec![0u64; bounds.len() + 1];
        let mut defl_sum = 0.0f64;
        for sample in s.agg.samples() {
            let mean = sample.deflections as f64 / sample.packets.max(1) as f64;
            let slot = bounds
                .iter()
                .position(|&b| mean <= b)
                .unwrap_or(bounds.len());
            // lint: allow-panic(slot <= bounds.len() and counts has bounds.len()+1 slots)
            defl_counts[slot] += 1;
            defl_sum += mean;
        }
        w.histogram(
            "hotpotato_deflections_per_packet",
            &fleet,
            &bounds,
            &defl_counts,
            defl_sum,
        );

        w.family(
            "hotpotato_snapshot_seq",
            "Sequence number of the served snapshot.",
            Kind::Gauge,
        );
        w.sample("hotpotato_snapshot_seq", &fleet, seq as f64);
        w.family(
            "hotpotato_run_finished",
            "1 once the whole sweep quiesced.",
            Kind::Gauge,
        );
        w.sample(
            "hotpotato_run_finished",
            &fleet,
            if s.finished { 1.0 } else { 0.0 },
        );

        // Fleet-specific families.
        w.family(
            "hotpotato_fleet_runs_total",
            "Sweep runs by state.",
            Kind::Counter,
        );
        for (state, v) in [
            ("done", s.agg.runs()),
            ("failed", s.agg.failed()),
            ("running", s.running),
            ("queued", s.total.saturating_sub(s.done() + s.running)),
        ] {
            w.sample(
                "hotpotato_fleet_runs_total",
                &[("run", "fleet"), ("state", state)],
                v as f64,
            );
        }
        w.family(
            "hotpotato_fleet_violations_total",
            "Invariant violations across every fleet run (0 required).",
            Kind::Counter,
        );
        w.sample(
            "hotpotato_fleet_violations_total",
            &fleet,
            s.agg.violations() as f64,
        );

        w.family(
            "hotpotato_fleet_ratio",
            "Cross-run distribution of steps/(C+L), the Theorem 2.6 ratio.",
            Kind::Histogram,
        );
        w.histogram(
            "hotpotato_fleet_ratio",
            &fleet,
            RATIO_BUCKET_BOUNDS,
            s.agg.ratio_counts(),
            s.agg.ratio_sum(),
        );

        if let Some(fit) = s.agg.fit() {
            w.family(
                "hotpotato_fleet_fit_exponent",
                "Log-log scaling exponent of steps vs (C+L), with its 95% CI.",
                Kind::Gauge,
            );
            for (bound, v) in [
                ("point", fit.exponent),
                ("lo", fit.ci95.0),
                ("hi", fit.ci95.1),
            ] {
                w.sample(
                    "hotpotato_fleet_fit_exponent",
                    &[("run", "fleet"), ("bound", bound)],
                    v,
                );
            }
        }

        w.family(
            "hotpotato_fleet_worker_runs_total",
            "Completed runs per pool worker.",
            Kind::Counter,
        );
        for (i, &runs) in s.per_worker.iter().enumerate() {
            let worker = i.to_string();
            w.sample(
                "hotpotato_fleet_worker_runs_total",
                &[("run", "fleet"), ("worker", &worker)],
                runs as f64,
            );
        }
        w.finish()
    }
}

/// The coordinator body: owns the pool, folds results, publishes after
/// every event, flushes the final snapshot after shutdown. Reads the
/// wall clock only to stamp telemetry (elapsed/ETA) — results never
/// depend on it.
// lint: telemetry
fn coordinate(
    config: FleetConfig,
    workers: usize,
    mut publisher: SnapshotPublisher<FleetSnapshot>,
) {
    let started = Instant::now();
    let total = config.specs.len() as u64;
    let pool = PoolCore::new(workers, || {});
    let (tx, rx) = mpsc::channel::<FleetMsg>();
    for spec in config.specs {
        let tx = tx.clone();
        let verify = config.verify;
        let throttle_ms = config.throttle_ms;
        let submitted = pool.submit(Box::new(move || {
            let worker = worker_index();
            let _ = tx.send(FleetMsg::Started { worker });
            if throttle_ms > 0 {
                std::thread::sleep(std::time::Duration::from_millis(throttle_ms));
            }
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_fleet_spec(&spec, verify)
            }))
            .unwrap_or_else(|_| Err(format!("run '{}' panicked", spec.name())));
            let _ = tx.send(FleetMsg::Done { worker, result });
        }));
        if submitted.is_err() {
            break; // pool shut down under us; nothing more to queue
        }
    }
    drop(tx);

    let mut agg = FleetAggregator::new();
    let mut per_worker = vec![0u64; workers];
    let mut busy = vec![false; workers];
    let mut running = 0u64;
    let mut errors: Vec<String> = Vec::new();
    for msg in &rx {
        match msg {
            FleetMsg::Started { worker } => {
                running += 1;
                if let Some(b) = busy.get_mut(worker) {
                    *b = true;
                }
            }
            FleetMsg::Done { worker, result } => {
                running = running.saturating_sub(1);
                if let Some(b) = busy.get_mut(worker) {
                    *b = false;
                }
                if let Some(w) = per_worker.get_mut(worker) {
                    *w += 1;
                }
                match result {
                    Ok(sample) => agg.record(sample),
                    Err(e) => {
                        agg.record_failure();
                        if errors.len() < 8 {
                            errors.push(e);
                        }
                    }
                }
            }
        }
        let snap = FleetSnapshot {
            agg: agg.clone(),
            total,
            running,
            per_worker: per_worker.clone(),
            busy: busy.clone(),
            errors: errors.clone(),
            elapsed_ms: started.elapsed().as_millis() as u64,
            finished: false,
        };
        publisher.publish_with(|s| *s = snap);
    }
    pool.shutdown();
    let elapsed_ms = started.elapsed().as_millis() as u64;
    publisher.flush_with(|s| {
        *s = FleetSnapshot {
            agg: agg.clone(),
            total,
            running: 0,
            per_worker: per_worker.clone(),
            busy: vec![false; workers],
            errors: errors.clone(),
            elapsed_ms,
            finished: true,
        }
    });
}

/// The `Arc`-wrapped handler the HTTP server wants.
pub fn into_fleet_handler(
    service: FleetService,
) -> Arc<dyn Fn(&Request) -> Response + Send + Sync> {
    let service = Arc::new(service);
    Arc::new(move |req: &Request| service.handle(req))
}

#[cfg(test)]
mod tests {
    use super::*;
    use routing_core::spec::expand_sweep;

    fn get(service: &FleetService, path: &str) -> Response {
        service.handle(&Request {
            method: "GET".into(),
            path: path.into(),
        })
    }

    #[test]
    fn one_run_produces_a_trace_derived_sample() {
        let spec = routing_core::spec::parse_run_spec("bf:5/bitrev/busch/3").unwrap();
        let sample = run_fleet_spec(&spec, true).expect("clean run");
        assert_eq!(sample.topo, "bf:5");
        assert_eq!(sample.algo, "busch");
        assert_eq!(sample.seed, 3);
        assert_eq!(sample.violations, 0);
        assert!(sample.steps > 0 && sample.moves > 0);
        assert!(sample.delivered == sample.packets);
        assert!(sample.ratio_cl() > 0.0);
        // Deterministic: the same spec yields the identical sample.
        assert_eq!(run_fleet_spec(&spec, false).unwrap(), sample);
    }

    #[test]
    fn fleet_service_completes_a_sweep_and_serves_it() {
        let specs = expand_sweep("bf:5/bitrev/busch/1..6").unwrap();
        let mut service = FleetService::launch(FleetConfig {
            specs,
            workers: 3,
            verify: true,
            throttle_ms: 0,
        })
        .unwrap();
        service.wait();

        let fleet = get(&service, "/fleet");
        assert_eq!(fleet.status, 200);
        let doc = hotpotato_trace::parse_fleet(&fleet.body).expect("valid fleet doc");
        assert_eq!(doc["runs"].as_u64(), Some(6));
        assert_eq!(doc["failed"].as_u64(), Some(0));
        assert_eq!(doc["violations"].as_u64(), Some(0));
        assert_eq!(doc["cells"].as_array().unwrap().len(), 1);

        let progress = get(&service, "/fleet/progress");
        let pdoc = serde_json::from_str(&progress.body).unwrap();
        assert_eq!(pdoc["done"].as_u64(), Some(6));
        assert_eq!(pdoc["queued"].as_u64(), Some(0));
        assert_eq!(pdoc["finished"].as_bool(), Some(true));
        assert_eq!(pdoc["workers"].as_array().unwrap().len(), 3);

        let metrics = get(&service, "/metrics").body;
        for family in [
            "hotpotato_steps_total",
            "hotpotato_moves_total",
            "hotpotato_deliveries_total",
            "hotpotato_deflections_total",
            "hotpotato_deflections_per_packet",
            "hotpotato_snapshot_seq",
            "hotpotato_run_finished",
            "hotpotato_fleet_runs_total",
            "hotpotato_fleet_violations_total",
            "hotpotato_fleet_ratio",
            "hotpotato_fleet_worker_runs_total",
        ] {
            assert!(
                metrics.contains(&format!("# TYPE {family} ")),
                "missing family {family}"
            );
        }
        assert!(metrics.contains("hotpotato_run_finished{run=\"fleet\"} 1"));

        assert_eq!(get(&service, "/healthz").body, "ok\n");
        assert_eq!(get(&service, "/nope").status, 404);
    }

    #[test]
    fn failed_runs_are_counted_not_fatal() {
        // `aging` parses as an algorithm but no router builds it here, so
        // the run fails at execution and the sweep keeps going.
        let mut specs = expand_sweep("bf:5/bitrev/busch/1..2").unwrap();
        specs.extend(expand_sweep("bf:5/bitrev/aging/1").unwrap());
        let mut service = FleetService::launch(FleetConfig {
            specs,
            workers: 2,
            verify: false,
            throttle_ms: 0,
        })
        .unwrap();
        service.wait();
        let (runs, failed, errors) = service
            .reader()
            .acquire(|_, s| (s.agg.runs(), s.agg.failed(), s.errors.clone()));
        assert_eq!(runs, 2);
        assert_eq!(failed, 1);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("aging"), "{errors:?}");
    }

    #[test]
    fn empty_sweeps_are_rejected() {
        assert!(FleetService::launch(FleetConfig::new(Vec::new())).is_err());
    }

    #[test]
    fn explicit_router_runs_share_the_envelope() {
        use busch_router::{BuschRouter, Params};
        let spec = routing_core::spec::parse_run_spec("bf:5/bitrev/busch/9").unwrap();
        let (_, problem, _) = spec.instantiate().unwrap();
        let router = BuschRouter::new(Params::auto(&problem));
        let sample =
            run_fleet_router(&router, &problem, "bf:5", "bitrev", 9, true).expect("clean run");
        assert_eq!(sample.topo, "bf:5");
        assert_eq!(sample.algo, "busch");
        assert_eq!(sample.seed, 9);
        assert_eq!(sample.packets, problem.num_packets() as u64);
        assert_eq!(sample.violations, 0);
        assert!(sample.steps > 0);
        // Seeded fresh: repeatable.
        assert_eq!(
            run_fleet_router(&router, &problem, "bf:5", "bitrev", 9, false).unwrap(),
            sample
        );
    }

    #[test]
    fn streaming_specs_ride_the_fleet() {
        // An adversarial-arrival streaming run folds in like any other.
        let spec =
            routing_core::spec::parse_run_spec("bf:5/bitrev/greedy/2/adversarial:4:8").unwrap();
        let sample = run_fleet_spec(&spec, true).expect("streaming run");
        assert_eq!(sample.topo, "bf:5");
        assert!(sample.steps > 0);
        assert_eq!(sample.violations, 0);
    }
}
