//! The live snapshot payload and the observer that publishes it.
//!
//! [`LiveObserver`] sits in the engine's observer slot (composing a
//! [`MetricsObserver`] and a [`StreamingAggregator`]) and, every
//! `publish_every` steps, copies the current aggregates into a
//! [`LiveSnapshot`] through the never-blocking
//! [`SnapshotPublisher`] exchange. HTTP handler threads read the other
//! side. The publish path is `// lint: hot-path`: it only copies —
//! `clear()` + `extend_from_slice` into buffers pre-sized at exchange
//! creation — so the steady state allocates nothing and a contended
//! publish is skipped rather than waited on.

use hotpotato_sim::{
    snapshot_exchange, ExitKind, MetricsObserver, RouteObserver, RouteStats, Section,
    SnapshotPublisher, SnapshotReader, StepReport, Time,
};
use hotpotato_trace::{Bucket, StreamingAggregator};
use leveled_net::ids::DirectedEdge;
use routing_core::RoutingProblem;

/// Upper bounds of the deflections-per-packet histogram buckets
/// (`le="0"`, `le="1"`, `le="2"`, `le="4"`, … — powers of two); counts
/// above the last bound land in the `+Inf` overflow bucket.
pub const DEFL_BUCKET_BOUNDS: [u32; 10] = [0, 1, 2, 4, 8, 16, 32, 64, 128, 256];

/// Number of histogram slots: one per bound plus the overflow bucket.
pub const DEFL_BUCKETS: usize = DEFL_BUCKET_BOUNDS.len() + 1;

/// The histogram slot a deflection count falls into.
fn defl_bucket(deflections: u32) -> usize {
    DEFL_BUCKET_BOUNDS
        .iter()
        .position(|&bound| deflections <= bound)
        .unwrap_or(DEFL_BUCKET_BOUNDS.len())
}

/// Upper bounds of the delivery-latency histogram buckets (steps from
/// injection to absorption; powers of two). Latencies above the last
/// bound land in the `+Inf` overflow bucket.
pub const LAT_BUCKET_BOUNDS: [u64; 12] = [1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048];

/// Number of latency histogram slots: one per bound plus overflow.
pub const LAT_BUCKETS: usize = LAT_BUCKET_BOUNDS.len() + 1;

/// Capacity of the sliding window of recent delivery latencies that
/// backs the live percentile gauges. A fixed ring: the window always
/// holds the most recent `LAT_WINDOW` deliveries (fewer early on).
pub const LAT_WINDOW: usize = 512;

/// The histogram slot a delivery latency falls into.
fn lat_bucket(latency: u64) -> usize {
    LAT_BUCKET_BOUNDS
        .iter()
        .position(|&bound| latency <= bound)
        .unwrap_or(LAT_BUCKET_BOUNDS.len())
}

/// One coherent view of a running (or finished) simulation: everything
/// `/metrics` and `/rollup` serve, copied under the exchange lock so a
/// reader never observes half of one step and half of another.
#[derive(Clone, Debug)]
pub struct LiveSnapshot {
    /// Total packets in the instance.
    pub packets: u64,
    /// Steps completed.
    pub steps: u64,
    /// Moves staged (injections included).
    pub moves: u64,
    /// Packets delivered (trivial deliveries included).
    pub delivered: u64,
    /// Trivial (source == destination) deliveries.
    pub trivial: u64,
    /// Packets injected into the network.
    pub injected: u64,
    /// Oscillation moves.
    pub oscillations: u64,
    /// Safe (edge-recycling) deflections.
    pub safe_deflections: u64,
    /// Unsafe (fallback) deflections.
    pub unsafe_deflections: u64,
    /// In-flight packets after the last completed step.
    pub active: u64,
    /// Phases seen so far (0 for phase-less routers).
    pub phases: u64,
    /// Streaming: packets surfaced by the arrival process (0 in batch
    /// mode, where the whole workload is available at step 0).
    pub arrivals: u64,
    /// Streaming: packets dropped by admission control (queue full).
    pub drops: u64,
    /// Deliveries counted into the latency histogram.
    pub lat_count: u64,
    /// Sum of all counted delivery latencies (steps).
    pub lat_sum: u64,
    /// Delivery-latency histogram, per-bucket counts aligned with
    /// [`LAT_BUCKET_BOUNDS`] plus the overflow slot.
    pub lat_hist: [u64; LAT_BUCKETS],
    /// Sliding window of the most recent delivery latencies (unordered;
    /// readers sort their own copy for percentiles).
    pub lat_window: Vec<u64>,
    /// Deflections-per-packet histogram, per-bucket counts aligned with
    /// [`DEFL_BUCKET_BOUNDS`] plus the overflow slot.
    pub defl_hist: [u64; DEFL_BUCKETS],
    /// Live per-level packet count.
    pub occupancy: Vec<u32>,
    /// Max per-level occupancy observed at any step end.
    pub level_watermark: Vec<u32>,
    /// Initial per-frontier-set congestion (Lemma 2.2 quantity).
    pub congestion_initial: Vec<u32>,
    /// Max audited per-set congestion across phase ends.
    pub congestion_watermark: Vec<u32>,
    /// The `ln(L·N)` Lemma 2.2 bound the watermarks are measured against.
    pub ln_ln_bound: f64,
    /// `true` once the run quiesced (this snapshot is final and exact).
    pub finished: bool,
    /// Rollup: what the aggregator keys buckets by (`phase` or `step`).
    pub rollup_keyed_by: &'static str,
    /// Rollup: hard bucket cap.
    pub rollup_cap: usize,
    /// Rollup: keys per bucket after merges.
    pub rollup_scale: u64,
    /// Rollup: merge sweeps that have run.
    pub rollup_merges: u64,
    /// Rollup: exact run totals.
    pub rollup_totals: Bucket,
    /// Rollup: the current buckets.
    pub rollup_buckets: Vec<Bucket>,
}

impl LiveSnapshot {
    /// An empty seed snapshot with every buffer pre-sized so steady-state
    /// publishes never allocate (`levels` per-level slots, `rollup_cap`
    /// bucket slots, and a generous frontier-set reserve).
    fn seed(levels: usize, packets: u64, rollup_cap: usize) -> Self {
        // Frontier-set counts are small (the paper uses O(1) sets); 64
        // covers anything the CLI can configure without reallocating.
        const SET_RESERVE: usize = 64;
        LiveSnapshot {
            packets,
            steps: 0,
            moves: 0,
            delivered: 0,
            trivial: 0,
            injected: 0,
            oscillations: 0,
            safe_deflections: 0,
            unsafe_deflections: 0,
            active: 0,
            phases: 0,
            arrivals: 0,
            drops: 0,
            lat_count: 0,
            lat_sum: 0,
            lat_hist: [0; LAT_BUCKETS],
            lat_window: Vec::with_capacity(LAT_WINDOW),
            defl_hist: [0; DEFL_BUCKETS],
            occupancy: Vec::with_capacity(levels),
            level_watermark: Vec::with_capacity(levels),
            congestion_initial: Vec::with_capacity(SET_RESERVE),
            congestion_watermark: Vec::with_capacity(SET_RESERVE),
            ln_ln_bound: 0.0,
            finished: false,
            rollup_keyed_by: "step",
            rollup_cap,
            rollup_scale: 1,
            rollup_merges: 0,
            rollup_totals: Bucket::default(),
            rollup_buckets: Vec::with_capacity(rollup_cap),
        }
    }

    /// Total deflections (safe + unsafe).
    pub fn total_deflections(&self) -> u64 {
        self.safe_deflections + self.unsafe_deflections
    }

    /// Streaming injection-queue depth: packets that have arrived but
    /// are neither dropped nor in the network nor trivially delivered.
    /// Always 0 in batch mode (no arrival events).
    pub fn queue_depth(&self) -> u64 {
        self.arrivals
            .saturating_sub(self.drops + self.injected + self.trivial)
    }
}

/// Scalar counters the observer maintains itself (the vectors live in
/// the composed [`MetricsObserver`]).
#[derive(Clone, Copy, Default)]
struct Counts {
    steps: u64,
    moves: u64,
    delivered: u64,
    trivial: u64,
    injected: u64,
    oscillations: u64,
    active: u64,
    phases: u64,
    arrivals: u64,
    drops: u64,
}

/// Incremental delivery-latency aggregates: the histogram, the running
/// sum/count, and the fixed-capacity ring of recent latencies.
struct Latency {
    hist: [u64; LAT_BUCKETS],
    sum: u64,
    count: u64,
    ring: Vec<u64>,
    pos: usize,
}

impl Latency {
    fn new() -> Self {
        Latency {
            hist: [0; LAT_BUCKETS],
            sum: 0,
            count: 0,
            ring: Vec::with_capacity(LAT_WINDOW),
            pos: 0,
        }
    }

    // lint: hot-path
    fn record(&mut self, latency: u64) {
        self.hist[lat_bucket(latency)] += 1;
        self.sum += latency;
        self.count += 1;
        if self.ring.len() < LAT_WINDOW {
            self.ring.push(latency);
        } else {
            self.ring[self.pos] = latency;
            self.pos = (self.pos + 1) % LAT_WINDOW;
        }
    }
}

/// Copies the current aggregates into `snap`. Split out so the same
/// fill drives both the non-blocking periodic publish and the final
/// blocking flush; everything here is a scalar store or a copy into a
/// pre-sized buffer.
// lint: hot-path
fn fill_snapshot(
    snap: &mut LiveSnapshot,
    counts: &Counts,
    defl_hist: &[u64; DEFL_BUCKETS],
    latency: &Latency,
    metrics: &MetricsObserver,
    agg: &StreamingAggregator,
    finished: bool,
) {
    snap.steps = counts.steps;
    snap.moves = counts.moves;
    snap.delivered = counts.delivered;
    snap.trivial = counts.trivial;
    snap.injected = counts.injected;
    snap.oscillations = counts.oscillations;
    snap.active = counts.active;
    snap.phases = counts.phases;
    snap.arrivals = counts.arrivals;
    snap.drops = counts.drops;
    snap.lat_count = latency.count;
    snap.lat_sum = latency.sum;
    snap.lat_hist = latency.hist;
    snap.lat_window.clear();
    snap.lat_window.extend_from_slice(&latency.ring);
    snap.safe_deflections = metrics.safe_deflections();
    snap.unsafe_deflections = metrics.unsafe_deflections();
    snap.defl_hist = *defl_hist;
    snap.occupancy.clear();
    snap.occupancy.extend_from_slice(metrics.occupancy());
    snap.level_watermark.clear();
    snap.level_watermark
        .extend_from_slice(metrics.level_watermarks());
    snap.congestion_initial.clear();
    snap.congestion_initial
        .extend_from_slice(metrics.congestion_initial());
    snap.congestion_watermark.clear();
    snap.congestion_watermark
        .extend_from_slice(metrics.congestion_watermarks());
    snap.ln_ln_bound = metrics.ln_ln_bound();
    snap.finished = finished;
    snap.rollup_keyed_by = agg.keyed_by();
    snap.rollup_cap = agg.cap();
    snap.rollup_scale = agg.scale();
    snap.rollup_merges = agg.merges();
    snap.rollup_totals = *agg.totals();
    snap.rollup_buckets.clear();
    snap.rollup_buckets.extend_from_slice(agg.buckets());
}

/// The serving observer: forwards every event to a [`MetricsObserver`]
/// and a [`StreamingAggregator`], maintains the fixed-bucket deflection
/// histogram incrementally, and publishes a [`LiveSnapshot`] every
/// `publish_every` steps through the exchange.
pub struct LiveObserver {
    metrics: MetricsObserver,
    agg: StreamingAggregator,
    publisher: SnapshotPublisher<LiveSnapshot>,
    publish_every: u64,
    /// Optional per-step sleep (microseconds) — stretches short runs so
    /// CI can scrape them mid-flight deterministically.
    throttle_us: u64,
    counts: Counts,
    /// Deflections per packet (drives the incremental histogram).
    defl_counts: Vec<u32>,
    defl_hist: [u64; DEFL_BUCKETS],
    /// Injection step per packet (`u64::MAX` = not injected yet);
    /// delivery latency is absorb time minus this.
    injected_step: Vec<Time>,
    latency: Latency,
}

impl LiveObserver {
    /// Creates the observer plus the reader half of its exchange.
    /// Snapshots are published every `publish_every` steps (min 1) and
    /// the internal rollup aggregator holds at most `rollup_cap` buckets.
    pub fn new(
        problem: &RoutingProblem,
        publish_every: u64,
        rollup_cap: usize,
    ) -> (Self, SnapshotReader<LiveSnapshot>) {
        let levels = problem.network_arc().num_levels();
        let packets = problem.num_packets() as u64;
        let n = problem.num_packets();
        let seed_a = LiveSnapshot::seed(levels, packets, rollup_cap.max(2));
        let seed_b = seed_a.clone();
        let (publisher, reader) = snapshot_exchange(seed_a, seed_b);
        let mut defl_hist = [0u64; DEFL_BUCKETS];
        // Every packet starts with zero deflections.
        defl_hist[0] = packets;
        (
            LiveObserver {
                metrics: MetricsObserver::new(problem),
                agg: StreamingAggregator::new(rollup_cap),
                publisher,
                publish_every: publish_every.max(1),
                throttle_us: 0,
                counts: Counts::default(),
                defl_counts: vec![0; n],
                defl_hist,
                injected_step: vec![u64::MAX; n],
                latency: Latency::new(),
            },
            reader,
        )
    }

    /// Sleeps `us` microseconds at every step end (0 disables). Only for
    /// demonstrations and CI smoke runs that must be scrapable mid-run.
    pub fn with_throttle_us(mut self, us: u64) -> Self {
        self.throttle_us = us;
        self
    }

    /// `(skipped_fills, skipped_flips)` of the underlying publisher.
    pub fn skipped_publishes(&self) -> (u64, u64) {
        self.publisher.skipped()
    }

    /// Read access to the composed aggregator (the quiesce-consistency
    /// tests compare the served rollup against exactly this state).
    pub fn aggregator(&self) -> &StreamingAggregator {
        &self.agg
    }

    /// Final blocking flush: overwrites the headline counters with the
    /// authoritative [`RouteStats`] and marks the snapshot finished.
    /// After this returns, every acquire observes the final state.
    pub fn finish(mut self, stats: &RouteStats) -> StreamingAggregator {
        self.counts.steps = stats.steps_run;
        self.counts.delivered = stats.delivered_count() as u64;
        self.counts.active = 0;
        let Self {
            metrics,
            agg,
            publisher,
            counts,
            defl_hist,
            latency,
            ..
        } = &mut self;
        publisher.flush_with(|snap| {
            fill_snapshot(snap, counts, defl_hist, latency, metrics, agg, true);
        });
        self.agg
    }

    /// Periodic non-blocking publish (and optional throttle sleep).
    // lint: hot-path
    fn publish_if_due(&mut self) {
        if self.counts.steps.is_multiple_of(self.publish_every) {
            let Self {
                metrics,
                agg,
                publisher,
                counts,
                defl_hist,
                latency,
                ..
            } = self;
            publisher.publish_with(|snap| {
                fill_snapshot(snap, counts, defl_hist, latency, metrics, agg, false);
            });
        }
    }
}

impl RouteObserver for LiveObserver {
    fn on_move(&mut self, t: Time, pkt: u32, mv: DirectedEdge, kind: ExitKind) {
        self.counts.moves += 1;
        match kind {
            ExitKind::Inject => {
                self.counts.injected += 1;
                self.injected_step[pkt as usize] = t;
            }
            ExitKind::Oscillate => self.counts.oscillations += 1,
            ExitKind::Deflect { .. } => {
                let d = &mut self.defl_counts[pkt as usize];
                let from = defl_bucket(*d);
                *d += 1;
                let to = defl_bucket(*d);
                if from != to {
                    self.defl_hist[from] -= 1;
                    self.defl_hist[to] += 1;
                }
            }
            ExitKind::Advance => {}
        }
        self.metrics.on_move(t, pkt, mv, kind);
        self.agg.on_move(t, pkt, mv, kind);
    }

    fn on_trivial(&mut self, t: Time, pkt: u32) {
        self.counts.trivial += 1;
        self.counts.delivered += 1;
        // Source == destination: delivered the step it was admitted.
        self.latency.record(0);
        self.metrics.on_trivial(t, pkt);
        self.agg.on_trivial(t, pkt);
    }

    fn on_deliver(&mut self, t: Time, pkt: u32) {
        self.counts.delivered += 1;
        let injected = self.injected_step[pkt as usize];
        if injected != u64::MAX {
            self.latency.record(t.saturating_sub(injected));
        }
        self.metrics.on_deliver(t, pkt);
        self.agg.on_deliver(t, pkt);
    }

    fn on_arrival(&mut self, t: Time, pkt: u32) {
        self.counts.arrivals += 1;
        self.metrics.on_arrival(t, pkt);
        self.agg.on_arrival(t, pkt);
    }

    fn on_drop(&mut self, t: Time, pkt: u32) {
        self.counts.drops += 1;
        self.metrics.on_drop(t, pkt);
        self.agg.on_drop(t, pkt);
    }

    fn on_step_end(&mut self, t: Time, report: &StepReport, active: usize) {
        self.counts.steps += 1;
        self.counts.active = active as u64;
        self.metrics.on_step_end(t, report, active);
        self.agg.on_step_end(t, report, active);
        self.publish_if_due();
        if self.throttle_us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(self.throttle_us));
        }
    }

    fn on_sets_assigned(&mut self, sets: &[u32], num_sets: u32) {
        self.metrics.on_sets_assigned(sets, num_sets);
        self.agg.on_sets_assigned(sets, num_sets);
    }

    fn on_phase_start(&mut self, phase: u64, t: Time) {
        self.counts.phases = self.counts.phases.max(phase + 1);
        self.metrics.on_phase_start(phase, t);
        self.agg.on_phase_start(phase, t);
    }

    fn on_phase_end(&mut self, phase: u64, t: Time) {
        self.metrics.on_phase_end(phase, t);
        self.agg.on_phase_end(phase, t);
    }

    fn on_frontier(&mut self, phase: u64, set: u32, frontier: i64) {
        self.metrics.on_frontier(phase, set, frontier);
        self.agg.on_frontier(phase, set, frontier);
    }

    fn on_set_congestion(&mut self, phase: u64, set: u32, congestion: u32, initial: u32) {
        self.metrics
            .on_set_congestion(phase, set, congestion, initial);
        self.agg.on_set_congestion(phase, set, congestion, initial);
    }

    fn on_section(&mut self, section: Section, nanos: u64) {
        self.metrics.on_section(section, nanos);
        self.agg.on_section(section, nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defl_buckets_partition_the_counts() {
        assert_eq!(defl_bucket(0), 0);
        assert_eq!(defl_bucket(1), 1);
        assert_eq!(defl_bucket(2), 2);
        assert_eq!(defl_bucket(3), 3);
        assert_eq!(defl_bucket(4), 3);
        assert_eq!(defl_bucket(5), 4);
        assert_eq!(defl_bucket(256), 9);
        assert_eq!(defl_bucket(257), 10);
        assert_eq!(defl_bucket(u32::MAX), DEFL_BUCKETS - 1);
    }

    #[test]
    fn latency_buckets_and_ring_window() {
        assert_eq!(lat_bucket(0), 0);
        assert_eq!(lat_bucket(1), 0);
        assert_eq!(lat_bucket(2), 1);
        assert_eq!(lat_bucket(2048), LAT_BUCKET_BOUNDS.len() - 1);
        assert_eq!(lat_bucket(2049), LAT_BUCKETS - 1);

        let mut lat = Latency::new();
        for i in 0..(LAT_WINDOW as u64 + 10) {
            lat.record(i);
        }
        assert_eq!(lat.count, LAT_WINDOW as u64 + 10);
        assert_eq!(lat.hist.iter().sum::<u64>(), lat.count);
        // The ring holds exactly the most recent LAT_WINDOW latencies.
        assert_eq!(lat.ring.len(), LAT_WINDOW);
        assert!(!lat.ring.contains(&9));
        assert!(lat.ring.contains(&10));
        assert!(lat.ring.contains(&(LAT_WINDOW as u64 + 9)));
    }

    #[test]
    fn histogram_counts_always_sum_to_packets() {
        // Simulate deflection count increments and check conservation.
        let mut hist = [0u64; DEFL_BUCKETS];
        let mut counts = [0u32; 7];
        hist[0] = counts.len() as u64;
        for (i, steps) in [
            (0usize, 1u32),
            (1, 3),
            (2, 9),
            (3, 300),
            (4, 0),
            (5, 2),
            (6, 257),
        ] {
            for _ in 0..steps {
                let from = defl_bucket(counts[i]);
                counts[i] += 1;
                let to = defl_bucket(counts[i]);
                if from != to {
                    hist[from] -= 1;
                    hist[to] += 1;
                }
            }
        }
        assert_eq!(hist.iter().sum::<u64>(), counts.len() as u64);
        // 300 and 257 overflow the last bound.
        assert_eq!(hist[DEFL_BUCKETS - 1], 2);
    }
}
