//! The paper's parameters (§2.1), exact and simulation-scale.
//!
//! The published parameter block was reconstructed from its uses in the
//! analysis (the conference OCR garbled it); each formula below is pinned
//! down by the lemma that consumes it:
//!
//! | param | value | pinned by |
//! |-------|-------|-----------|
//! | `a`   | `2e³ / ln(LN)` | Lemma 2.2 (per-set congestion `≤ ln(LN)` w.h.p.) |
//! | `m`   | `ln²(LN) + 5`  | Lemma 4.21 / invariant `I_f` |
//! | `q`   | `1 / (m² ln(LN))` | Lemma 4.13 (`mq = 1/(m ln LN)`) |
//! | `w`   | `4e·m²·ln(LN)·ln(1/p₁) + 3m + 1` | Lemma 4.15 |
//! | `p₀`  | `1 − 1/(2LN)`  | Lemma 2.2, basis of `p(k)` |
//! | `p₁`  | `1/((SM+L)·2SM·L·N²)` with `SM = aC·m` | Theorem 2.6 unfolding |
//! | `p(k)`| `p₀·(1 − SM·N·p₁/m)ᵏ`... see [`PaperParams::p`] | §4.3 |
//!
//! With these, the schedule runs `aC·m + L` phases of `m·w` steps each —
//! the `O((C+L)·ln⁹(LN))` total of Theorem 2.6, delivered with probability
//! at least `1 − 1/(LN)`. The `T7` experiment tabulates these formulas;
//! they are far too large to simulate literally (the paper itself calls
//! the algorithm "not really practical"), so simulations use the same
//! algorithm under the tunable [`Params`].

use routing_core::RoutingProblem;

/// The literal paper parameters for a problem with congestion `C`, depth
/// `L` and `N` packets. All values `f64` because they are astronomically
/// large for any interesting instance.
#[derive(Clone, Copy, Debug)]
pub struct PaperParams {
    /// Problem congestion `C`.
    pub c: f64,
    /// Network depth `L`.
    pub l: f64,
    /// Number of packets `N`.
    pub n: f64,
    /// `ln(LN)` (clamped below by 1 so tiny toy instances stay finite).
    pub ln_ln: f64,
    /// Frontier-set density: `aC` frontier sets are used.
    pub a: f64,
    /// Inner levels per frame = rounds per phase.
    pub m: f64,
    /// Per-step excitation probability.
    pub q: f64,
    /// Steps per round.
    pub w: f64,
    /// Basis success probability `p₀`.
    pub p0: f64,
    /// Per-phase failure quantum `p₁`.
    pub p1: f64,
}

impl serde::Serialize for PaperParams {
    fn to_json(&self) -> serde::Value {
        serde::Value::object([
            ("c", self.c.to_json()),
            ("l", self.l.to_json()),
            ("n", self.n.to_json()),
            ("ln_ln", self.ln_ln.to_json()),
            ("a", self.a.to_json()),
            ("m", self.m.to_json()),
            ("q", self.q.to_json()),
            ("w", self.w.to_json()),
            ("p0", self.p0.to_json()),
            ("p1", self.p1.to_json()),
        ])
    }
}

impl PaperParams {
    /// Evaluates the paper's formulas for `(C, L, N)`.
    pub fn new(c: u64, l: u64, n: u64) -> Self {
        let c = (c as f64).max(1.0);
        let l = (l as f64).max(1.0);
        let n = (n as f64).max(1.0);
        let ln_ln = (l * n).ln().max(1.0);
        let e = std::f64::consts::E;
        let a = 2.0 * e.powi(3) / ln_ln;
        let m = ln_ln.powi(2) + 5.0;
        let q = 1.0 / (m * m * ln_ln);
        // "amC" in the paper: (number of frontier sets ⌈aC⌉) times m. Using
        // the ceiled set count keeps p(k) and p₁ algebraically consistent,
        // so the Theorem 2.6 bound holds exactly.
        let amc = (a * c).ceil().max(1.0) * m;
        let p1 = 1.0 / ((amc + l) * 2.0 * amc * l * n * n);
        let w = 4.0 * e * m * m * ln_ln * (1.0 / p1).ln() + 3.0 * m + 1.0;
        let p0 = 1.0 - 1.0 / (2.0 * l * n);
        PaperParams {
            c,
            l,
            n,
            ln_ln,
            a,
            m,
            q,
            w,
            p0,
            p1,
        }
    }

    /// Evaluates the formulas for a concrete routing problem.
    pub fn for_problem(problem: &RoutingProblem) -> Self {
        PaperParams::new(
            problem.congestion() as u64,
            problem.network().depth() as u64,
            problem.num_packets() as u64,
        )
    }

    /// Number of frontier sets, `⌈aC⌉`.
    pub fn num_sets(&self) -> f64 {
        (self.a * self.c).ceil().max(1.0)
    }

    /// Number of phases until the last frontier-frame leaves the network:
    /// `aC·m + L` (the paper's `amC + L`).
    pub fn total_phases(&self) -> f64 {
        self.num_sets() * self.m + self.l
    }

    /// Total routing time `(aC·m + L)·m·w` of Proposition 4.25.
    pub fn total_time(&self) -> f64 {
        self.total_phases() * self.m * self.w
    }

    /// The inductive success probability `p(k) = p₀·(1 − aC·m·N·p₁)^k`
    /// (paper §2.1, unrolled). Evaluated via `ln_1p`/`exp`: `x` is tiny and
    /// `k` huge, so `powf` would lose the Θ(1/(LN)²) margin over the
    /// Theorem 2.6 bound to rounding.
    pub fn p(&self, k: f64) -> f64 {
        let amc = self.num_sets() * self.m;
        let x = amc * self.n * self.p1;
        self.p0 * (k * (-x).ln_1p()).exp()
    }

    /// The success probability of the whole run, `p(aC·m + L)`; Theorem 2.6
    /// shows it is at least `1 − 1/(LN)`.
    pub fn success_probability(&self) -> f64 {
        self.p(self.total_phases())
    }

    /// Theorem 2.6's lower bound on the success probability.
    pub fn success_lower_bound(&self) -> f64 {
        1.0 - 1.0 / (self.l * self.n)
    }

    /// The "Õ factor": total time divided by `C + L`, which Theorem 2.6
    /// bounds by `O(ln⁹(LN))`.
    pub fn polylog_factor(&self) -> f64 {
        self.total_time() / (self.c + self.l)
    }
}

/// Simulation-scale parameters: the same algorithm structure with tunable
/// constants. [`Params::auto`] picks values that deliver reliably at
/// laptop scale; the ablation experiments (`A1`–`A3`) sweep them.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Params {
    /// Inner levels per frontier-frame = rounds per phase (paper `m`,
    /// must be ≥ 3: injections happen at inner level `m−1`, targets recede
    /// to inner level `m−2`).
    pub m: u32,
    /// Steps per round (paper `w`).
    pub w: u32,
    /// Per-step excitation probability (paper `q`).
    pub q: f64,
    /// Number of frontier sets (paper `⌈aC⌉`).
    pub num_sets: u32,
    /// After the scheduled phases end, keep simulating (packets then chase
    /// their destinations directly) for at most this many extra scheduled
    /// lengths before giving up.
    pub grace_factor: u32,
}

impl serde::Serialize for Params {
    fn to_json(&self) -> serde::Value {
        serde::Value::object([
            ("m", self.m.to_json()),
            ("w", self.w.to_json()),
            ("q", self.q.to_json()),
            ("num_sets", self.num_sets.to_json()),
            ("grace_factor", self.grace_factor.to_json()),
        ])
    }
}

impl Params {
    /// Explicit parameters; panics if structurally invalid.
    pub fn scaled(m: u32, w: u32, q: f64, num_sets: u32) -> Self {
        let p = Params {
            m,
            w,
            q,
            num_sets,
            grace_factor: 3,
        };
        p.validate();
        p
    }

    /// Heuristic parameters for `problem`, scaling the paper's shapes down
    /// to practical constants: roughly `C/2` frontier sets (per-set
    /// congestion ~2), frames of `Θ(ln(LN))` levels, rounds long enough to
    /// cross a frame several times.
    pub fn auto(problem: &RoutingProblem) -> Self {
        let l = problem.network().depth().max(1) as f64;
        let n = problem.num_packets().max(1) as f64;
        let ln_ln = (l * n).ln().max(2.0);
        let m = (ln_ln.ceil() as u32).clamp(4, 12);
        let w = 8 * m;
        let q = 1.0 / (m as f64);
        let num_sets = (problem.congestion() / 2).max(1);
        Params {
            m,
            w,
            q,
            num_sets,
            grace_factor: 3,
        }
    }

    /// The literal paper parameters, rounded to integers. These are
    /// astronomically large for any non-trivial instance — useful only to
    /// demonstrate the formulas or drive micro-instances.
    pub fn from_paper(c: u64, l: u64, n: u64) -> Self {
        let p = PaperParams::new(c, l, n);
        Params {
            m: p.m.ceil() as u32,
            w: p.w.ceil().min(u32::MAX as f64) as u32,
            q: p.q,
            num_sets: p.num_sets().min(u32::MAX as f64) as u32,
            grace_factor: 1,
        }
    }

    /// Steps per phase, `m·w`.
    pub fn phase_len(&self) -> u64 {
        self.m as u64 * self.w as u64
    }

    /// Scheduled number of phases until the last frame leaves a network of
    /// depth `depth` (paper: `aC·m + L`).
    pub fn scheduled_phases(&self, depth: u32) -> u64 {
        self.num_sets as u64 * self.m as u64 + depth as u64
    }

    /// Scheduled number of steps, `(aC·m + L)·m·w`.
    pub fn scheduled_steps(&self, depth: u32) -> u64 {
        self.scheduled_phases(depth) * self.phase_len()
    }

    /// Hard simulation cap: scheduled steps times `1 + grace_factor`.
    pub fn max_steps(&self, depth: u32) -> u64 {
        self.scheduled_steps(depth) * (1 + self.grace_factor as u64)
    }

    fn validate(&self) {
        assert!(self.m >= 3, "m must be at least 3 (injection at inner m-1)");
        assert!(self.w >= 1, "rounds must have at least one step");
        assert!((0.0..=1.0).contains(&self.q), "q is a probability");
        assert!(self.num_sets >= 1, "need at least one frontier set");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders;
    use rand::SeedableRng;
    use std::sync::Arc;

    #[test]
    fn paper_params_match_reconstruction() {
        // C = 64, L = 32, N = 1024: ln(LN) = ln(32768).
        let p = PaperParams::new(64, 32, 1024);
        let ln_ln = (32.0f64 * 1024.0).ln();
        assert!((p.ln_ln - ln_ln).abs() < 1e-12);
        let e = std::f64::consts::E;
        assert!((p.a - 2.0 * e.powi(3) / ln_ln).abs() < 1e-9);
        assert!((p.m - (ln_ln * ln_ln + 5.0)).abs() < 1e-9);
        assert!((p.q - 1.0 / (p.m * p.m * ln_ln)).abs() < 1e-15);
        assert!((p.p0 - (1.0 - 1.0 / (2.0 * 32.0 * 1024.0))).abs() < 1e-15);
    }

    #[test]
    fn lemma_2_2_style_sanity() {
        // mq = 1/(m ln(LN)) ==> (1 - mq)^(m ln LN) >= 1/(2e) (Lemma 4.13).
        let p = PaperParams::new(100, 100, 10_000);
        let mq = p.m * p.q;
        assert!((mq - 1.0 / (p.m * p.ln_ln)).abs() < 1e-15);
        let prob = (1.0 - mq).powf(p.m * p.ln_ln);
        assert!(prob >= 1.0 / (2.0 * std::f64::consts::E), "prob = {prob}");
    }

    #[test]
    fn lemma_4_15_exponent_matches_w() {
        // (w - m - 1)/2 - m == 2e ln(1/p1) / q, so the failure probability
        // bound (1 - q/2e)^((w-m-1)/2 - m) <= e^(-ln(1/p1)) = p1.
        let p = PaperParams::new(10, 20, 50);
        let lhs = (p.w - p.m - 1.0) / 2.0 - p.m;
        let rhs = 2.0 * std::f64::consts::E * (1.0 / p.p1).ln() / p.q;
        assert!((lhs / rhs - 1.0).abs() < 1e-9, "lhs={lhs} rhs={rhs}");
        let fail = (1.0 - p.q / (2.0 * std::f64::consts::E)).powf(lhs);
        assert!(fail <= p.p1 * 1.01, "fail={fail} p1={}", p.p1);
    }

    #[test]
    fn theorem_2_6_success_probability() {
        for (c, l, n) in [(8u64, 8u64, 64u64), (64, 32, 1024), (1000, 100, 100_000)] {
            let p = PaperParams::new(c, l, n);
            let succ = p.success_probability();
            let bound = p.success_lower_bound();
            assert!(
                succ >= bound,
                "C={c} L={l} N={n}: success {succ} < bound {bound}"
            );
            assert!(succ <= 1.0);
        }
    }

    #[test]
    fn polylog_factor_is_polylog() {
        // The Õ factor should grow like ln⁹(LN): check it is sandwiched
        // between ln⁶ and ln¹² for a range of instances.
        for (c, l, n) in [(16u64, 16u64, 256u64), (256, 64, 4096), (4096, 256, 65536)] {
            let p = PaperParams::new(c, l, n);
            let f = p.polylog_factor();
            let ln = p.ln_ln;
            // The factor is Θ(ln⁹(LN)) up to constants and lower-order
            // ln(C), ln(1/p₁) terms: sandwich it generously.
            assert!(
                f > ln.powi(6),
                "factor {f} too small vs ln^6 {}",
                ln.powi(6)
            );
            assert!(
                f < ln.powi(14),
                "factor {f} too large vs ln^14 {}",
                ln.powi(14)
            );
        }
    }

    #[test]
    fn paper_time_is_impractical_and_scaled_is_not() {
        let p = PaperParams::new(64, 32, 1024);
        assert!(p.total_time() > 1e12, "literal schedule is astronomic");
        let s = Params::scaled(6, 48, 0.1, 8);
        assert!(s.max_steps(32) < 10_000_000);
    }

    #[test]
    fn scaled_accessors() {
        let p = Params::scaled(4, 10, 0.5, 3);
        assert_eq!(p.phase_len(), 40);
        assert_eq!(p.scheduled_phases(20), 3 * 4 + 20);
        assert_eq!(p.scheduled_steps(20), 32 * 40);
        assert_eq!(p.max_steps(20), 32 * 40 * 4);
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn tiny_m_rejected() {
        let _ = Params::scaled(2, 10, 0.5, 3);
    }

    #[test]
    fn auto_params_are_reasonable() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(0);
        let net = Arc::new(builders::butterfly(5));
        let prob = routing_core::workloads::random_pairs(&net, 20, &mut rng).unwrap();
        let p = Params::auto(&prob);
        assert!(p.m >= 4 && p.m <= 12);
        assert!(p.num_sets >= 1);
        assert!(p.q > 0.0 && p.q <= 0.5);
        assert!(p.max_steps(net.depth()) < 100_000_000);
    }

    #[test]
    fn from_paper_is_huge_but_finite() {
        let p = Params::from_paper(4, 4, 8);
        assert!(p.m >= 3);
        assert!(p.w > 1000, "w = {} should be large", p.w);
        assert!(p.num_sets >= 1);
    }
}
