//! Busch's SPAA 2002 Õ(congestion + dilation) hot-potato routing algorithm
//! for leveled networks.
//!
//! This crate is the paper's primary contribution, implemented faithfully:
//!
//! * [`params`] — the paper's §2.1 parameter formulas (`a`, `m`, `q`, `w`,
//!   `p₀`, `p₁`, `p(k)`), both in their literal (impractically large) form
//!   [`PaperParams`] and as simulation-scale [`Params`];
//! * [`schedule`] — frontier sets and the frontier-frame pipeline (§2.4,
//!   §2.5, Figure 2): frame positions per phase, inner levels, receding
//!   target levels, and injection phases;
//! * [`router`] — the algorithm itself (§3): normal/excited/wait packet
//!   states, priority conflict resolution, safe backward deflections,
//!   wait-state oscillation, and isolation injection, driven on the
//!   bufferless engine of `hotpotato-sim`;
//! * [`invariants`] — runtime checkers for the six correctness invariants
//!   `I_a..I_f` of §4, reported as violation counters (all zero in the
//!   regimes the analysis covers).
//!
//! # Example
//!
//! ```
//! use busch_router::{BuschRouter, Params};
//! use leveled_net::builders;
//! use rand::SeedableRng;
//! use std::sync::Arc;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
//! let net = Arc::new(builders::butterfly(4));
//! let problem = routing_core::workloads::random_pairs(&net, 12, &mut rng).unwrap();
//! let router = BuschRouter::new(Params::auto(&problem));
//! let outcome = router.route(&problem, &mut rng);
//! assert!(outcome.stats.all_delivered());
//! ```

pub mod invariants;
pub mod params;
pub mod router;
pub mod schedule;
mod soa;

pub use invariants::InvariantReport;
pub use params::{PaperParams, Params};
pub use router::{BuschConfig, BuschOutcome, BuschRouter, EngineKind, PacketState};
pub use schedule::FrameSchedule;
