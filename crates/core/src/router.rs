//! The paper's hot-potato routing algorithm (§3).
//!
//! Per step, for every node with arriving packets:
//!
//! 1. **States & priorities.** Each packet is *normal*, *excited* (highest
//!    priority; entered with probability `q` per step) or *wait* (lowest).
//!    Excited packets demote to normal when deflected and at round ends;
//!    wait packets demote when deflected and at phase ends.
//! 2. **Targets.** A packet's target node is the node of its current path
//!    in its frame's target level (which recedes one inner level per
//!    round), or its destination if the path does not cross that level.
//!    Normal/excited packets follow their current path toward the target;
//!    on reaching it (by a forward move) they enter the wait state and
//!    oscillate on their arrival edge.
//! 3. **Conflicts.** One winner per (edge, direction), by priority, ties
//!    uniformly at random; losers are deflected *backward and safely*
//!    (Lemma 2.1) via [`hotpotato_sim::conflict::resolve`].
//! 4. **Injection.** A packet enters the network at the beginning of the
//!    phase in which its source sits at inner level `m − 1` of its frame,
//!    retrying on subsequent steps if its first edge is busy (§3, "Packet
//!    Injection").
//!
//! The run lasts `(num_sets·m + L)` phases of `m·w` steps; under scaled
//! parameters a configurable grace period follows (frames have left the
//! network, targets degenerate to destinations, so stragglers chase their
//! destinations directly with the same conflict rules).

use crate::invariants::{
    check_phase_end, initial_per_set_congestion, InvariantReport, PhaseAuditScratch,
};
use crate::params::Params;
use crate::schedule::{assign_sets, FrameSchedule};
use hotpotato_sim::conflict::{self, Contender, DeflectRule};
use hotpotato_sim::{
    ExitKind, InjectOutcome, NoopObserver, RouteObserver, RouteOutcome, RouteStats, Router,
    Section, Simulation, Time,
};
use leveled_net::ids::{DirectedEdge, Direction};
use leveled_net::EdgeId;
use rand::{Rng, RngCore};
use routing_core::RoutingProblem;
use std::sync::Arc;

/// The paper's packet states (§3, "Packet State").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketState {
    /// Following the current path toward the target; middle priority.
    Normal,
    /// Highest priority; entered with probability `q`, left on deflection
    /// or at round end.
    Excited,
    /// Lowest priority; oscillating on `edge`, whose head is the packet's
    /// target node.
    Wait {
        /// The edge the packet oscillates on (the last link it traversed
        /// to reach its target node).
        edge: EdgeId,
    },
}

impl PacketState {
    fn priority(self) -> u32 {
        match self {
            PacketState::Excited => 2,
            PacketState::Normal => 1,
            PacketState::Wait { .. } => 0,
        }
    }
}

/// Per-packet metadata carried through the engine.
#[derive(Clone, Copy, Debug)]
pub struct Meta {
    /// The packet's frontier set.
    pub set: u32,
    /// The packet's current state.
    pub state: PacketState,
}

/// Which bufferless engine executes the run — re-exported from
/// [`routing_core::spec`], the one typed selection surface shared by
/// `RunSpec`, `SimulationBuilder`, and this router's config. Both
/// engines implement the same algorithm; the scalar engine is the
/// oracle the data-oriented engine is golden-tested against, and stays
/// selectable for audit.
pub use routing_core::spec::EngineKind;

/// Router configuration beyond the scheduling parameters.
#[derive(Clone, Copy, Debug)]
pub struct BuschConfig {
    /// Scheduling parameters (`m`, `w`, `q`, number of frontier sets).
    pub params: Params,
    /// Run the `O(N·L)` phase-end invariant audits (`I_b..I_f`).
    pub check_invariants: bool,
    /// Permit non-safe deflections when no safe backward edge exists
    /// (needed for scaled parameters, where the w.h.p. preconditions can
    /// fail; every use is counted in the invariant report). With `false`
    /// the router panics where the paper's Lemma 2.1 would be violated.
    pub allow_fallback: bool,
    /// Ablation switch (`A4`): deflect losers to a uniformly random free
    /// link instead of the paper's safe backward rule. Breaks Lemma 2.1
    /// and Lemma 4.10 — exists to *measure* what safe deflections buy.
    pub arbitrary_deflections: bool,
    /// Ablation switch (`A5`): ignore the frame-scheduled injection phases
    /// and admit every packet from step 0 (greedy-style). Destroys
    /// injection isolation (`I_a`) and lets packets of different sets meet
    /// (`I_d`) — exists to *measure* what the paper's injection discipline
    /// buys.
    pub eager_injection: bool,
    /// Record the per-step active-packet trace.
    pub trace: bool,
    /// Record every movement event for independent replay auditing
    /// ([`hotpotato_sim::replay::verify`]).
    pub record: bool,
    /// Which engine executes the run (see [`EngineKind::resolve`]: the
    /// default honors the deprecated `HOTPOTATO_ENGINE` env var, with a
    /// warning, when no explicit kind is set).
    pub engine: EngineKind,
    /// SoA engine only: shard each step's dispatch across contiguous
    /// level bands with per-band rng streams (see `crate::soa`). Results
    /// are deterministic in (problem, seed) regardless of thread count,
    /// but differ from the sequential/scalar stream, so this is opt-in
    /// (large-instance benchmarks, the parallel determinism tests).
    pub parallel_bands: bool,
}

impl BuschConfig {
    /// Default configuration for the given parameters: fallback allowed,
    /// invariants checked, no trace.
    pub fn new(params: Params) -> Self {
        BuschConfig {
            params,
            check_invariants: true,
            allow_fallback: true,
            arbitrary_deflections: false,
            eager_injection: false,
            trace: false,
            record: false,
            engine: EngineKind::resolve(None),
            parallel_bands: false,
        }
    }

    /// [`BuschConfig::new`] with an explicit engine choice (bypasses the
    /// deprecated env-var fallback entirely).
    pub fn with_engine(params: Params, engine: EngineKind) -> Self {
        BuschConfig {
            engine,
            ..BuschConfig::new(params)
        }
    }
}

/// Result of a routing run.
#[derive(Clone, Debug)]
pub struct BuschOutcome {
    /// Standard routing statistics (makespan, latencies, deflections,
    /// deviation depths, counters).
    pub stats: RouteStats,
    /// Violation counters for the paper's invariants `I_a..I_f`.
    pub invariants: InvariantReport,
    /// The frontier-set each packet was assigned to.
    pub set_assignment: Vec<u32>,
    /// The frame schedule used.
    pub schedule: FrameSchedule,
    /// Phases elapsed when the run ended.
    pub phases_elapsed: u64,
    /// The parameters used.
    pub params: Params,
    /// The movement record, when [`BuschConfig::record`] was set.
    pub record: Option<hotpotato_sim::RunRecord>,
}

/// The paper's routing algorithm, ready to route problems.
#[derive(Clone, Copy, Debug)]
pub struct BuschRouter {
    cfg: BuschConfig,
}

impl BuschRouter {
    /// Creates a router with default configuration for `params`.
    pub fn new(params: Params) -> Self {
        BuschRouter {
            cfg: BuschConfig::new(params),
        }
    }

    /// Creates a router with an explicit configuration.
    pub fn with_config(cfg: BuschConfig) -> Self {
        BuschRouter { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &BuschConfig {
        &self.cfg
    }

    /// Routes `problem`, consuming randomness from `rng` (set assignment,
    /// excitation, tie-breaking). Deterministic given the rng state.
    ///
    /// Takes the problem behind an `Arc` so the engine can share it
    /// without deep-cloning the paths (problems are immutable).
    pub fn route<R: Rng + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
    ) -> BuschOutcome {
        self.route_observed(problem, rng, &mut NoopObserver)
    }

    /// [`BuschRouter::route`] with an attached event sink: besides the
    /// engine's movement events, the router emits the schedule events —
    /// phase boundaries, per-set frontiers `φ_i(k)`, and (when audits are
    /// on) the per-set congestion measured at each phase end. With
    /// [`NoopObserver`] this monomorphizes to exactly [`BuschRouter::route`].
    pub fn route_observed<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
        observer: &mut O,
    ) -> BuschOutcome {
        match self.cfg.engine {
            EngineKind::Scalar => self.route_scalar(problem, rng, observer),
            EngineKind::Soa => crate::soa::route_soa(&self.cfg, problem, rng, observer),
        }
    }

    /// The scalar-engine driver (the original implementation); kept as
    /// the oracle the data-oriented driver is golden-tested against.
    // lint: telemetry
    // (the `Instant` reads feed `on_section` profiling only; no routing
    // decision depends on them)
    fn route_scalar<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut R,
        observer: &mut O,
    ) -> BuschOutcome {
        let params = self.cfg.params;
        let net = problem.network_arc();
        let depth = net.depth();
        let schedule = FrameSchedule::new(params.m, params.num_sets, depth);
        let phase_len = params.phase_len();
        let max_steps = params.max_steps(depth).max(phase_len);

        // Random uniform frontier-set assignment (§2.4).
        let sets = assign_sets(problem.num_packets(), params.num_sets, rng);
        let metas: Vec<Meta> = sets
            .iter()
            .map(|&set| Meta {
                set,
                state: PacketState::Normal,
            })
            .collect();

        observer.on_sets_assigned(&sets, params.num_sets);
        let timing = observer.wants_timing();
        let mut sim = Simulation::builder(Arc::clone(problem), metas)
            .trace(self.cfg.trace)
            .recording(self.cfg.record)
            .observer(observer)
            .build();
        let mut invariants = InvariantReport::default();
        let initial_per_set = if self.cfg.check_invariants {
            initial_per_set_congestion(&sim, &sets, params.num_sets)
        } else {
            Vec::new()
        };

        // Injection agenda: (injection step, packet), sorted descending so
        // due packets pop off the back.
        let mut agenda: Vec<(Time, u32)> = (0..problem.num_packets() as u32)
            .map(|p| {
                if self.cfg.eager_injection {
                    return (0, p);
                }
                let src = problem.packets()[p as usize].path.source();
                let phase = schedule.injection_phase(sets[p as usize], net.level(src));
                (phase * phase_len, p)
            })
            .collect();
        agenda.sort_unstable_by(|a, b| b.cmp(a));
        let mut ready: Vec<u32> = Vec::new();

        // Scratch buffers reused across steps.
        let mut arrivals_buf: Vec<u32> = Vec::new();
        let mut contenders: Vec<Contender> = Vec::new();
        let mut nodes_buf: Vec<leveled_net::NodeId> = Vec::new();
        let mut conflict_scratch = conflict::ConflictScratch::default();
        let mut audit_scratch = PhaseAuditScratch::default();
        let mut total_moves = 0u64;

        while !sim.is_done() && sim.now() < max_steps {
            let t = sim.now();
            let phase = t / phase_len;
            let round = ((t / params.w as u64) % params.m as u64) as u32;
            let round_start = t.is_multiple_of(params.w as u64);
            let phase_start = t.is_multiple_of(phase_len);

            if phase_start {
                let obs = sim.observer_mut();
                obs.on_phase_start(phase, t);
                for set in 0..params.num_sets {
                    if schedule.frame_in_network(set, phase) {
                        obs.on_frontier(phase, set, schedule.frontier(set, phase));
                    }
                }
            }
            let section_start = if timing {
                Some(std::time::Instant::now())
            } else {
                None
            };

            // Dispatch every node with arrivals. The per-packet state
            // updates (round/phase demotions, excitation — §3) are folded
            // into this loop: every active packet is visited exactly once
            // per step, and both updates are per-packet decisions that
            // only influence its own node's conflict resolution, so the
            // fold is equivalent to separate passes while avoiding two
            // O(N) status scans per step.
            let mut excitations = 0u64;
            sim.occupied_nodes_into(&mut nodes_buf);
            for &v in &nodes_buf {
                arrivals_buf.clear();
                arrivals_buf.extend_from_slice(sim.arrivals(v));

                for &p in &arrivals_buf {
                    let meta = sim.meta_mut(p);
                    // Excited packets demote at round ends, wait packets
                    // at phase ends.
                    if round_start {
                        match meta.state {
                            PacketState::Excited => meta.state = PacketState::Normal,
                            PacketState::Wait { .. } if phase_start => {
                                meta.state = PacketState::Normal;
                            }
                            _ => {}
                        }
                    }
                    // Each normal packet turns excited with probability q,
                    // every step.
                    if params.q > 0.0 && meta.state == PacketState::Normal && rng.gen_bool(params.q)
                    {
                        meta.state = PacketState::Excited;
                        excitations += 1;
                    }
                }

                // I_d: packets of different frontier-sets must not meet.
                if self.cfg.check_invariants && arrivals_buf.len() > 1 {
                    let first = sim.packet(arrivals_buf[0]).meta.set;
                    if arrivals_buf[1..]
                        .iter()
                        .any(|&p| sim.packet(p).meta.set != first)
                    {
                        invariants.cross_set_meetings += 1;
                    }
                }

                contenders.clear();
                for &p in &arrivals_buf {
                    let meta = sim.packet(p).meta;
                    let last = sim.packet(p).last_move;
                    let (state, desired) = match meta.state {
                        PacketState::Wait { edge } => {
                            // Oscillate: back from the target (edge head),
                            // forward from the rear node (edge tail).
                            let e = net.edge(edge);
                            let mv = if v == e.head {
                                DirectedEdge::backward(edge)
                            } else {
                                debug_assert_eq!(v, e.tail);
                                DirectedEdge::forward(edge)
                            };
                            (meta.state, mv)
                        }
                        PacketState::Normal | PacketState::Excited => {
                            let target = schedule.target_level(meta.set, phase, round);
                            let arrived_fwd = matches!(
                                last,
                                Some(mv) if mv.dir == Direction::Forward
                            );
                            if net.level(v) as i64 == target && arrived_fwd {
                                // Reached the target node: enter the wait
                                // state on the arrival edge (§3, "Wait
                                // state").
                                let edge = last.expect("checked above").edge;
                                let st = PacketState::Wait { edge };
                                sim.meta_mut(p).state = st;
                                (st, DirectedEdge::backward(edge))
                            } else {
                                let mv = sim
                                    .next_move_of(p)
                                    .expect("active packets are not at their destination");
                                (meta.state, mv)
                            }
                        }
                    };
                    contenders.push(Contender {
                        pkt: p,
                        desired,
                        priority: state.priority(),
                        arrival: last,
                    });
                }

                // Fast path: a lone packet at a node cannot conflict — its
                // desired slot originates here and nobody else wants it.
                // This skips the resolver's allocations on the (dominant)
                // uncontended case.
                if let [c] = contenders[..] {
                    let kind = match sim.packet(c.pkt).meta.state {
                        PacketState::Wait { .. } => ExitKind::Oscillate,
                        _ => ExitKind::Advance,
                    };
                    sim.stage_exit(c.pkt, c.desired, kind)
                        .expect("lone desired slot is free");
                    continue;
                }

                let rule = if self.cfg.arbitrary_deflections {
                    DeflectRule::Arbitrary
                } else {
                    DeflectRule::SafeBackward {
                        allow_fallback: self.cfg.allow_fallback,
                    }
                };
                let exits =
                    conflict::resolve_into(&sim, v, &contenders, rule, rng, &mut conflict_scratch)
                        .expect("hot-potato assignment failed: arrival bound violated");
                for &exit in exits {
                    let kind = if exit.won {
                        match sim.packet(exit.pkt).meta.state {
                            PacketState::Wait { .. } => ExitKind::Oscillate,
                            _ => ExitKind::Advance,
                        }
                    } else {
                        // Losers demote (§3: deflected excited and wait
                        // packets become normal).
                        sim.meta_mut(exit.pkt).state = PacketState::Normal;
                        if !exit.safe {
                            invariants.unsafe_deflections += 1;
                        }
                        ExitKind::Deflect { safe: exit.safe }
                    };
                    sim.stage_exit(exit.pkt, exit.mv, kind)
                        .expect("resolver produces feasible exits");
                }
            }

            if excitations > 0 {
                sim.stats_mut().bump_by("excitations", excitations);
            }
            let section_start = section_start.map(|start| {
                let now = std::time::Instant::now();
                sim.observer_mut()
                    .on_section(Section::Conflict, (now - start).as_nanos() as u64);
                now
            });

            // Injections: admit packets whose phase has begun; retry the
            // blocked ones every subsequent step (§3, "Packet Injection").
            while let Some(&(due, p)) = agenda.last() {
                if due > t {
                    break;
                }
                agenda.pop();
                ready.push(p);
            }
            ready.retain(|&p| {
                let src = sim.path_of(p).source();
                let occupied_source = !sim.arrivals(src).is_empty();
                match sim.try_inject(p).expect("pending packet") {
                    InjectOutcome::Injected => {
                        if occupied_source {
                            invariants.isolation_violations += 1;
                        }
                        false
                    }
                    InjectOutcome::DeliveredTrivially => false,
                    InjectOutcome::Blocked => {
                        sim.stats_mut().bump("injection_retries");
                        true
                    }
                }
            });

            let section_start = section_start.map(|start| {
                let now = std::time::Instant::now();
                sim.observer_mut()
                    .on_section(Section::Injection, (now - start).as_nanos() as u64);
                now
            });

            let report = sim.finish_step().expect("all arrivals staged");
            total_moves += report.moved as u64;
            let section_start = section_start.map(|start| {
                let now = std::time::Instant::now();
                sim.observer_mut()
                    .on_section(Section::Kinematics, (now - start).as_nanos() as u64);
                now
            });

            // Phase-end audits (the paper states I_a..I_f at phase ends).
            if self.cfg.check_invariants && (t + 1).is_multiple_of(phase_len) {
                // Wait packets count at their target node (the head of
                // their oscillation edge), regardless of oscillation parity.
                let effective =
                    |idx: u32, actual: leveled_net::Level| match sim.packet(idx).meta.state {
                        PacketState::Wait { edge } => net.level(net.edge(edge).head),
                        _ => actual,
                    };
                let per_set_max = check_phase_end(
                    &sim,
                    &schedule,
                    &sets,
                    phase,
                    &initial_per_set,
                    effective,
                    &mut audit_scratch,
                    &mut invariants,
                );
                let obs = sim.observer_mut();
                for (set, (&now_max, &init)) in per_set_max.iter().zip(&initial_per_set).enumerate()
                {
                    obs.on_set_congestion(phase, set as u32, now_max, init);
                }
                if let Some(start) = section_start {
                    sim.observer_mut()
                        .on_section(Section::Audit, start.elapsed().as_nanos() as u64);
                }
            }
            if (t + 1).is_multiple_of(phase_len) {
                sim.observer_mut().on_phase_end(phase, t + 1);
            }
        }

        let phases_elapsed = sim.now() / phase_len;
        let (mut stats, record) = sim.into_parts();
        invariants.unsafe_deflections = invariants
            .unsafe_deflections
            .max(stats.counter("fallback_deflections"));
        stats.counters.insert("phases", phases_elapsed);
        stats.counters.insert("moves", total_moves);
        BuschOutcome {
            stats,
            invariants,
            set_assignment: sets,
            schedule,
            phases_elapsed,
            params,
            record,
        }
    }
}

impl Router for BuschRouter {
    fn name(&self) -> &'static str {
        "busch"
    }

    fn route(
        &self,
        problem: &Arc<RoutingProblem>,
        rng: &mut dyn RngCore,
        observer: &mut dyn RouteObserver,
    ) -> RouteOutcome {
        let out = self.route_observed(problem, rng, observer);
        let mut stats = out.stats;
        stats.counters.insert("phases", out.phases_elapsed);
        stats
            .counters
            .insert("invariant_violations", out.invariants.total_violations());
        out.invariants.fold_into(&mut stats.counters);
        stats
            .counters
            .insert("num_sets", out.params.num_sets as u64);
        RouteOutcome {
            algorithm: "busch",
            stats,
            record: out.record,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use routing_core::workloads;

    fn router(m: u32, w: u32, q: f64, sets: u32) -> BuschRouter {
        BuschRouter::new(Params::scaled(m, w, q, sets))
    }

    #[test]
    fn single_packet_on_a_line_is_delivered() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let net = Arc::new(builders::linear_array(8));
        let prob = workloads::level_to_level(&net, 0, 7, &mut rng).unwrap();
        let out = router(3, 8, 0.1, 1).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
        assert_eq!(out.stats.deflections[0], 0, "no conflicts on a line");
    }

    #[test]
    fn butterfly_random_pairs_all_delivered() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 16, &mut rng).unwrap();
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn butterfly_permutation_all_delivered() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let k = 4;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn mesh_transpose_all_delivered() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let (raw, coords) = builders::mesh(6, 6, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        let prob = workloads::mesh_transpose(&net, &coords).unwrap();
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn hotspot_on_complete_leveled_delivered() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let net = Arc::new(builders::complete_leveled(8, 4));
        let prob = workloads::hotspot(&net, 10, 2, &mut rng).unwrap();
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn determinism_across_identical_seeds() {
        let net = Arc::new(builders::butterfly(3));
        let mut rng_w = ChaCha8Rng::seed_from_u64(6);
        let prob = workloads::random_pairs(&net, 8, &mut rng_w).unwrap();
        let r = router(4, 16, 0.1, 2);
        let mut rng1 = ChaCha8Rng::seed_from_u64(99);
        let mut rng2 = ChaCha8Rng::seed_from_u64(99);
        let o1 = r.route(&prob, &mut rng1);
        let o2 = r.route(&prob, &mut rng2);
        assert_eq!(o1.stats.delivered_at, o2.stats.delivered_at);
        assert_eq!(o1.stats.deflections, o2.stats.deflections);
        assert_eq!(o1.set_assignment, o2.set_assignment);
    }

    #[test]
    fn injection_happens_at_the_scheduled_phase() {
        // On a line with one packet and one set, injection must occur at
        // the start of phase (m - 1 + source_level).
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let net = Arc::new(builders::linear_array(10));
        let prob = workloads::level_to_level(&net, 2, 9, &mut rng).unwrap();
        let params = Params::scaled(3, 6, 0.0, 1);
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        assert!(out.stats.all_delivered());
        let expected_phase = 3 - 1 + 2; // m - 1 + source level
        assert_eq!(
            out.stats.injected_at[0],
            Some(expected_phase * params.phase_len()),
        );
    }

    #[test]
    fn invariants_clean_on_conflict_free_instance() {
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let net = Arc::new(builders::linear_array(12));
        let prob = workloads::level_to_level(&net, 0, 11, &mut rng).unwrap();
        let out = router(4, 12, 0.05, 1).route(&prob, &mut rng);
        assert!(out.stats.all_delivered());
        assert!(out.invariants.is_clean(), "{}", out.invariants.summary());
    }

    #[test]
    fn wait_state_parks_packets_without_losing_them() {
        // A single packet with a destination in the middle of the network:
        // it must be absorbed during round 0 of the right phase and never
        // linger.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let net = Arc::new(builders::linear_array(9));
        let prob = workloads::level_to_level(&net, 1, 5, &mut rng).unwrap();
        let out = router(3, 8, 0.1, 1).route(&prob, &mut rng);
        assert!(out.stats.all_delivered());
    }

    #[test]
    fn zero_excitation_probability_still_works_on_low_conflict_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let net = Arc::new(builders::butterfly(3));
        let prob = workloads::random_pairs(&net, 4, &mut rng).unwrap();
        let out = router(4, 16, 0.0, 4).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
        assert_eq!(out.stats.counter("excitations"), 0);
    }

    #[test]
    fn congested_funnel_is_fully_delivered() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let net = Arc::new(builders::complete_leveled(10, 4));
        let prob = workloads::funnel(&net, 16, &mut rng).unwrap();
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    }

    #[test]
    fn outcome_carries_schedule_and_assignment() {
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let net = Arc::new(builders::butterfly(3));
        let prob = workloads::random_pairs(&net, 6, &mut rng).unwrap();
        let out = router(4, 16, 0.1, 3).route(&prob, &mut rng);
        assert_eq!(out.set_assignment.len(), 6);
        assert!(out.set_assignment.iter().all(|&s| s < 3));
        assert_eq!(out.schedule.num_sets, 3);
        assert!(out.phases_elapsed > 0);
    }

    #[test]
    fn makespan_within_schedule_plus_grace() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 12, &mut rng).unwrap();
        let params = Params::auto(&prob);
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        assert!(out.stats.all_delivered());
        assert!(out.stats.makespan().unwrap() <= params.max_steps(net.depth()));
    }
}
