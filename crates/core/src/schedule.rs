//! Frontier sets and the frontier-frame pipeline (§2.4, §2.5, Figure 2).
//!
//! Time is divided into *phases* of `m` *rounds* of `w` steps. Each
//! frontier-set `S_i` is chased by frontier-frame `F_i`, whose *frontier*
//! (highest level) at phase `k` is `φ_i(k) = k − i·m`; the frame spans
//! levels `φ_i − m + 1 ..= φ_i` (clipped to the network). Frames are
//! pipelined one behind the other, never overlap, and all shift one level
//! forward per phase.
//!
//! Inner levels number a frame's levels 0 (the frontier) to `m − 1` (the
//! rear). The *target level* of a frame starts at inner level 0 during
//! rounds 0 and 1, then recedes one inner level per round (round `j ≥ 2` →
//! inner level `j − 1`). Packets of `S_i` are injected at the start of the
//! phase in which their source lies at inner level `m − 1`.

use leveled_net::Level;
use rand::Rng;

/// The deterministic geometry of the frontier-frame pipeline.
///
/// ```
/// use busch_router::FrameSchedule;
///
/// // Figure 2's setting: frames of 3 inner levels.
/// let s = FrameSchedule::new(3, 4, 11);
/// assert_eq!(s.frontier(0, 5), 5);        // φ_0(k) = k
/// assert_eq!(s.frontier(1, 5), 2);        // φ_1(k) = k - m
/// assert_eq!(s.frame_range(0, 5), (3, 5));
/// assert_eq!(s.inner_level(0, 5, 4), Some(1));
/// assert_eq!(s.injection_phase(0, 0), 2); // source level 0: phase m-1
/// assert_eq!(s.end_phase(), 4 * 3 + 11);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FrameSchedule {
    /// Inner levels per frame (= rounds per phase), paper `m`.
    pub m: u32,
    /// Number of frontier sets / frames, paper `⌈aC⌉`.
    pub num_sets: u32,
    /// Network depth `L`.
    pub depth: Level,
}

impl FrameSchedule {
    /// Creates the schedule; panics on structurally invalid inputs.
    pub fn new(m: u32, num_sets: u32, depth: Level) -> Self {
        assert!(m >= 3, "frames need at least 3 inner levels");
        assert!(num_sets >= 1);
        FrameSchedule { m, num_sets, depth }
    }

    /// The frontier `φ_i(k) = k − i·m` of frame `set` at `phase` — as a
    /// signed level, since frames start below the network and leave above
    /// it.
    #[inline]
    pub fn frontier(&self, set: u32, phase: u64) -> i64 {
        phase as i64 - set as i64 * self.m as i64
    }

    /// The inclusive level range `[φ − m + 1, φ]` of frame `set` at
    /// `phase`, unclipped.
    #[inline]
    pub fn frame_range(&self, set: u32, phase: u64) -> (i64, i64) {
        let f = self.frontier(set, phase);
        (f - self.m as i64 + 1, f)
    }

    /// Whether network level `level` lies inside frame `set` at `phase`.
    #[inline]
    pub fn contains(&self, set: u32, phase: u64, level: Level) -> bool {
        let (lo, hi) = self.frame_range(set, phase);
        (level as i64) >= lo && (level as i64) <= hi
    }

    /// The inner level of network `level` within frame `set` at `phase`
    /// (0 = frontier, `m − 1` = rear), or `None` if outside the frame.
    pub fn inner_level(&self, set: u32, phase: u64, level: Level) -> Option<u32> {
        let f = self.frontier(set, phase);
        let k = f - level as i64;
        if k >= 0 && k < self.m as i64 {
            Some(k as u32)
        } else {
            None
        }
    }

    /// The inner level the target sits at during `round`: 0 for rounds 0
    /// and 1, `round − 1` afterwards.
    #[inline]
    pub fn target_inner_level(&self, round: u32) -> u32 {
        debug_assert!(round < self.m);
        round.saturating_sub(1)
    }

    /// The network level (signed) the target of frame `set` points to at
    /// (`phase`, `round`).
    #[inline]
    pub fn target_level(&self, set: u32, phase: u64, round: u32) -> i64 {
        self.frontier(set, phase) - self.target_inner_level(round) as i64
    }

    /// The phase at whose beginning a packet of `set` with source at
    /// `source_level` is injected: the phase where the source lies at inner
    /// level `m − 1`.
    #[inline]
    pub fn injection_phase(&self, set: u32, source_level: Level) -> u64 {
        set as u64 * self.m as u64 + self.m as u64 - 1 + source_level as u64
    }

    /// First phase at which every frame has completely left the network
    /// (frontier-frame `num_sets − 1` past level `depth`): the paper's
    /// `aC·m + L`.
    pub fn end_phase(&self) -> u64 {
        self.num_sets as u64 * self.m as u64 + self.depth as u64
    }

    /// Whether frame `set` still intersects the network at `phase`.
    pub fn frame_in_network(&self, set: u32, phase: u64) -> bool {
        let (lo, hi) = self.frame_range(set, phase);
        hi >= 0 && lo <= self.depth as i64
    }
}

/// Assigns each of `n` packets to one of `num_sets` frontier sets,
/// uniformly and independently at random (paper §2.4).
pub fn assign_sets<R: Rng + ?Sized>(n: usize, num_sets: u32, rng: &mut R) -> Vec<u32> {
    (0..n).map(|_| rng.gen_range(0..num_sets)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn figure_2_geometry() {
        // Figure 2 shows a network with L = 11 and m = 3: reproduce the
        // relationships it depicts.
        let s = FrameSchedule::new(3, 5, 11);
        // At phase k, frame i's frontier is k - 3i; consecutive frames are
        // exactly m levels apart (pipelined, non-overlapping).
        for phase in 0..30u64 {
            for i in 0..4u32 {
                assert_eq!(
                    s.frontier(i, phase) - s.frontier(i + 1, phase),
                    3,
                    "frames ride m levels apart"
                );
                let (lo_i, hi_i) = s.frame_range(i, phase);
                let (lo_j, hi_j) = s.frame_range(i + 1, phase);
                assert!(hi_j < lo_i, "frames must not overlap");
                let _ = (lo_j, hi_i);
            }
        }
    }

    #[test]
    fn frontier_reaches_level_zero_at_phase_im() {
        let s = FrameSchedule::new(4, 3, 10);
        for i in 0..3u32 {
            let phase = (i * 4) as u64; // i * m
            assert_eq!(s.frontier(i, phase), 0, "paper: φ_i = 0 at phase i·m");
        }
    }

    #[test]
    fn frames_shift_forward_one_level_per_phase() {
        let s = FrameSchedule::new(4, 2, 10);
        for phase in 0..20u64 {
            assert_eq!(s.frontier(0, phase + 1), s.frontier(0, phase) + 1);
        }
    }

    #[test]
    fn inner_levels_number_frontier_to_rear() {
        let s = FrameSchedule::new(4, 2, 10);
        // Frame 0 at phase 5 spans levels 2..=5 with frontier 5.
        assert_eq!(s.frame_range(0, 5), (2, 5));
        assert_eq!(s.inner_level(0, 5, 5), Some(0));
        assert_eq!(s.inner_level(0, 5, 4), Some(1));
        assert_eq!(s.inner_level(0, 5, 2), Some(3));
        assert_eq!(s.inner_level(0, 5, 6), None);
        assert_eq!(s.inner_level(0, 5, 1), None);
        assert!(s.contains(0, 5, 3));
        assert!(!s.contains(0, 5, 6));
    }

    #[test]
    fn target_recedes_one_inner_level_per_round() {
        let s = FrameSchedule::new(5, 2, 10);
        assert_eq!(s.target_inner_level(0), 0);
        assert_eq!(s.target_inner_level(1), 0);
        assert_eq!(s.target_inner_level(2), 1);
        assert_eq!(s.target_inner_level(3), 2);
        assert_eq!(s.target_inner_level(4), 3);
        // Network-level version.
        let phase = 7u64;
        assert_eq!(s.target_level(0, phase, 0), 7);
        assert_eq!(s.target_level(0, phase, 4), 4);
    }

    #[test]
    fn injection_phase_places_source_at_rear() {
        let s = FrameSchedule::new(4, 3, 12);
        for set in 0..3u32 {
            for src in 0..=12u32 {
                let phase = s.injection_phase(set, src);
                assert_eq!(
                    s.inner_level(set, phase, src),
                    Some(s.m - 1),
                    "set {set} src {src}"
                );
            }
        }
    }

    #[test]
    fn end_phase_clears_all_frames() {
        let s = FrameSchedule::new(4, 3, 12);
        let end = s.end_phase();
        assert_eq!(end, 3 * 4 + 12);
        for set in 0..3u32 {
            assert!(
                !s.frame_in_network(set, end),
                "frame {set} must be gone at the end phase"
            );
            assert!(
                s.frame_in_network(set, end - 1) || set + 1 < 3,
                "the last frame leaves exactly at the end phase"
            );
        }
        // One phase earlier, the last frame still touches level L.
        assert!(s.frame_in_network(2, end - 1));
    }

    #[test]
    fn frames_cover_every_level_for_every_set() {
        // Every (set, level) pair gets visited by its frame before the end.
        let s = FrameSchedule::new(3, 4, 9);
        for set in 0..4u32 {
            for level in 0..=9u32 {
                let visited = (0..s.end_phase()).any(|ph| s.contains(set, ph, level));
                assert!(visited, "set {set} level {level}");
            }
        }
    }

    #[test]
    fn set_assignment_is_uniformish() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let sets = assign_sets(10_000, 10, &mut rng);
        assert_eq!(sets.len(), 10_000);
        let mut counts = [0usize; 10];
        for &s in &sets {
            counts[s as usize] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!((700..1300).contains(&c), "set {i} has {c} packets");
        }
    }
}
