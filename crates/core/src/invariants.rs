//! Runtime checkers for the six correctness invariants of §4.
//!
//! The analysis proves that, under the literal parameters, the following
//! hold at the end of every phase w.h.p.:
//!
//! * `I_a` — packets are injected in isolation;
//! * `I_b` — deflections are backward and safe, current paths are valid;
//! * `I_c` — active packets stay inside their frontier-frame;
//! * `I_d` — packets of different frontier-sets never meet;
//! * `I_e` — frontier-set congestion never exceeds its initial value
//!   (Lemma 4.10: safe deflections recycle edges within a set);
//! * `I_f` — at each phase end, the last three inner levels of every frame
//!   are empty (active packets sit at inner level ≤ m − 4).
//!
//! Under scaled parameters these are *measured*, not assumed: the router
//! increments a counter per violation, and the `T3` experiment reports
//! them across seeds. A clean report means the run behaved exactly as the
//! analysis describes.

use crate::schedule::FrameSchedule;
use hotpotato_sim::{RouteObserver, Simulation, SoaEngine};
use std::collections::BTreeMap;

/// Machine-checked registry of the bufferless *model* invariants: the
/// per-move / per-step laws every hot-potato trace must obey. These are
/// distinct from the statistical phase invariants `I_a..I_f` above, which
/// hold w.h.p. and are *measured*; the model invariants hold always, by
/// construction of the engine, and the offline trace verifier re-derives
/// each one independently.
///
/// `cargo xtask lint` cross-checks this registry against
/// `crates/trace/src/verify.rs`: every id listed here must appear there as
/// a `// check: <id>` tag on the code that enforces it, so an invariant
/// can never silently drop out of offline verification. Adding an entry
/// here without a matching tagged check fails the lint.
pub const BUFFERLESS_INVARIANTS: &[(&str, &str)] = &[
    (
        "slot-capacity",
        "at most one packet traverses each (edge, direction) slot per step",
    ),
    (
        "no-rest",
        "every in-flight packet moves every step (the hot-potato law)",
    ),
    (
        "locality",
        "every move departs the node the packet actually occupies (no teleports)",
    ),
    (
        "injection-port",
        "each packet injects exactly once, along the first edge of its preselected path",
    ),
    (
        "safe-deflection-recycling",
        "safe deflections go backward over an edge some packet crossed forward the previous step",
    ),
    (
        "absorb-on-arrival",
        "a packet landing on its destination is absorbed before the step closes",
    ),
    (
        "step-counter-consistency",
        "every step line's counters equal the event batch it closes",
    ),
    (
        "admission",
        "streaming injections are admitted arrivals: never before the packet arrived, never after it was dropped",
    ),
    (
        "arrival-before-injection",
        "streaming arrival events are unique, correctly timed, and precede the packet's injection",
    ),
    (
        "drop-discipline",
        "only an arrived, never-injected packet may be dropped, exactly once, in a streaming trace",
    ),
    (
        "snapshot-consistency",
        "every phase-entry snapshot checkpoint equals the state replayed from the event stream at its position",
    ),
];

/// Violation counters for `I_a..I_f` (see module docs). All-zero means the
/// run satisfied every invariant the paper proves w.h.p.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct InvariantReport {
    /// `I_a`: injections that happened while other packets were present at
    /// the source node.
    pub isolation_violations: u64,
    /// `I_b`: deflections that could not be made backward-and-safe
    /// (resolved by the fallback rule instead).
    pub unsafe_deflections: u64,
    /// `I_b`: packets whose current path failed validation at a phase end.
    pub invalid_current_paths: u64,
    /// `I_c`: (packet, phase-end) pairs found outside their frame.
    pub frame_escapes: u64,
    /// `I_d`: (node, step) occurrences where packets of different
    /// frontier-sets met.
    pub cross_set_meetings: u64,
    /// `I_e`: (set, phase-end) pairs whose current-path congestion
    /// exceeded the set's initial congestion.
    pub congestion_exceeded: u64,
    /// `I_f`: (packet, phase-end) pairs at inner level ≥ m − 3 (the rear
    /// three levels, which must be empty when the frame shifts).
    pub rear_levels_occupied: u64,
    /// Number of phase-end audits performed.
    pub phase_checks: u64,
}

impl serde::Serialize for InvariantReport {
    fn to_json(&self) -> serde::Value {
        serde::Value::object([
            ("isolation_violations", self.isolation_violations.to_json()),
            ("unsafe_deflections", self.unsafe_deflections.to_json()),
            (
                "invalid_current_paths",
                self.invalid_current_paths.to_json(),
            ),
            ("frame_escapes", self.frame_escapes.to_json()),
            ("cross_set_meetings", self.cross_set_meetings.to_json()),
            ("congestion_exceeded", self.congestion_exceeded.to_json()),
            ("rear_levels_occupied", self.rear_levels_occupied.to_json()),
            ("phase_checks", self.phase_checks.to_json()),
        ])
    }
}

impl InvariantReport {
    /// Total violations across all invariants.
    pub fn total_violations(&self) -> u64 {
        self.isolation_violations
            + self.unsafe_deflections
            + self.invalid_current_paths
            + self.frame_escapes
            + self.cross_set_meetings
            + self.congestion_exceeded
            + self.rear_levels_occupied
    }

    /// Whether the run satisfied every invariant.
    pub fn is_clean(&self) -> bool {
        self.total_violations() == 0
    }

    /// Folds every field into `counters` under stable `inv_*` names, so
    /// the report can travel inside `RouteStats` through the
    /// algorithm-agnostic [`hotpotato_sim::Router`] interface.
    pub fn fold_into(&self, counters: &mut BTreeMap<&'static str, u64>) {
        counters.insert("inv_isolation_violations", self.isolation_violations);
        counters.insert("inv_unsafe_deflections", self.unsafe_deflections);
        counters.insert("inv_invalid_current_paths", self.invalid_current_paths);
        counters.insert("inv_frame_escapes", self.frame_escapes);
        counters.insert("inv_cross_set_meetings", self.cross_set_meetings);
        counters.insert("inv_congestion_exceeded", self.congestion_exceeded);
        counters.insert("inv_rear_levels_occupied", self.rear_levels_occupied);
        counters.insert("inv_phase_checks", self.phase_checks);
    }

    /// Rebuilds a report from counters written by
    /// [`InvariantReport::fold_into`] (absent keys read as zero).
    pub fn from_counters(counters: &BTreeMap<&'static str, u64>) -> Self {
        let get = |k: &str| counters.get(k).copied().unwrap_or(0);
        InvariantReport {
            isolation_violations: get("inv_isolation_violations"),
            unsafe_deflections: get("inv_unsafe_deflections"),
            invalid_current_paths: get("inv_invalid_current_paths"),
            frame_escapes: get("inv_frame_escapes"),
            cross_set_meetings: get("inv_cross_set_meetings"),
            congestion_exceeded: get("inv_congestion_exceeded"),
            rear_levels_occupied: get("inv_rear_levels_occupied"),
            phase_checks: get("inv_phase_checks"),
        }
    }

    /// One-line summary listing each invariant's violation count.
    pub fn summary(&self) -> String {
        format!(
            "Ia={} Ib(unsafe)={} Ib(paths)={} Ic={} Id={} Ie={} If={} ({} phase checks)",
            self.isolation_violations,
            self.unsafe_deflections,
            self.invalid_current_paths,
            self.frame_escapes,
            self.cross_set_meetings,
            self.congestion_exceeded,
            self.rear_levels_occupied,
            self.phase_checks,
        )
    }
}

/// Initial per-set congestion of the preselected paths (the baseline for
/// the `I_e` non-increase check and the subject of Lemma 2.2).
pub fn initial_per_set_congestion<M, O: RouteObserver>(
    sim: &Simulation<M, O>,
    sets: &[u32],
    num_sets: u32,
) -> Vec<u32> {
    sim.problem().per_set_congestion(sets, num_sets as usize)
}

/// Reusable buffers for [`check_phase_end`]: a flat per-(set, edge)
/// congestion counter array plus the list of indices touched this check.
/// The counters are zeroed via the touched list, so a check costs O(paths),
/// not O(sets × edges) — and nothing allocates after the first check.
///
/// The SoA auditor additionally keeps the *pending* packets' congestion
/// incrementally: a packet's preselected path is immutable and the
/// pending population only ever shrinks, so the per-(set, edge) pending
/// counts are maintained by subtracting the paths of packets that left
/// pending since the previous check, instead of re-walking every
/// still-pending path each phase. Per-set pending maxima survive the
/// decrements via a count histogram ([`SetMax`]).
#[derive(Default)]
pub struct PhaseAuditScratch {
    /// Counter for (set, edge) at index `set * num_edges + edge`.
    counts: Vec<u32>,
    /// Indices of `counts` with a non-zero value.
    touched: Vec<u32>,
    /// Pending-path congestion per (set, edge), same indexing as
    /// `counts`; exact for the packets in `pending_members`.
    pending_counts: Vec<u32>,
    /// Packets whose preselected paths are summed into `pending_counts`.
    pending_members: Vec<u32>,
    /// Per-packet membership scratch for diffing the pending population.
    pending_flag: Vec<bool>,
    /// Per-set decrement-friendly maximum over `pending_counts`.
    set_max: Vec<SetMax>,
    /// Whether the incremental pending state has been seeded.
    pending_seeded: bool,
}

/// Maximum of a multiset of counters under increments and decrements:
/// a histogram over values ≥ 1 plus a lazily-walked current max.
#[derive(Default)]
struct SetMax {
    /// `hist[c]` = number of counters currently equal to `c` (c ≥ 1;
    /// zero-valued counters are untracked).
    hist: Vec<u32>,
    /// Largest value with a non-zero histogram entry (0 if none).
    max: u32,
}

impl SetMax {
    /// Records a counter moving from `c - 1` to `c`.
    fn inc(&mut self, c: u32) {
        if self.hist.len() <= c as usize {
            self.hist.resize(c as usize + 1, 0);
        }
        if c > 1 {
            self.hist[c as usize - 1] -= 1;
        }
        self.hist[c as usize] += 1;
        self.max = self.max.max(c);
    }

    /// Records a counter moving from `c` to `c - 1`.
    fn dec(&mut self, c: u32) {
        self.hist[c as usize] -= 1;
        if c > 1 {
            self.hist[c as usize - 1] += 1;
        }
        while self.max > 0 && self.hist[self.max as usize] == 0 {
            self.max -= 1;
        }
    }
}

impl PhaseAuditScratch {
    fn reserve(&mut self, num_sets: usize, num_edges: usize) {
        let want = num_sets * num_edges;
        if self.counts.len() < want {
            self.counts.resize(want, 0);
        }
        debug_assert!(self.touched.is_empty());
    }

    #[inline]
    fn bump(&mut self, set: u32, num_edges: usize, edge: u32) {
        let i = set as usize * num_edges + edge as usize;
        if self.counts[i] == 0 {
            self.touched.push(i as u32);
        }
        self.counts[i] += 1;
    }
}

/// Runs the phase-end audits (`I_b` path validity, `I_c`, `I_e`, `I_f`)
/// for the phase that just ended, updating `report`; returns the measured
/// per-set congestion (the `I_e` subject, which observers consume as the
/// Lemma 2.2 watermark source). `O(N·L)`.
///
/// `effective_level` maps a packet index and its actual level to the level
/// used for the `I_f` rear-emptiness check: the router passes the *target*
/// endpoint of a wait packet's oscillation edge, since the paper treats an
/// oscillating packet as sitting at its target node (the oscillation
/// parity at the exact phase boundary is immaterial to the analysis).
#[allow(clippy::too_many_arguments)]
pub fn check_phase_end<M, O: RouteObserver>(
    sim: &Simulation<M, O>,
    schedule: &FrameSchedule,
    sets: &[u32],
    phase: u64,
    initial_per_set: &[u32],
    effective_level: impl Fn(u32, leveled_net::Level) -> leveled_net::Level,
    scratch: &mut PhaseAuditScratch,
    report: &mut InvariantReport,
) -> Vec<u32> {
    report.phase_checks += 1;
    let net = sim.network();
    let num_edges = net.num_edges();

    // Per-(set, edge) congestion of current paths, counting active packets
    // (by their current paths) and pending packets (by their preselected
    // paths), as in the paper's definition (§2.4). Flat counters with a
    // touched list — the audits only ever sum per (set, edge), so the
    // enumeration order of the maintained lists is immaterial.
    scratch.reserve(initial_per_set.len().max(1), num_edges);

    for &idx in sim.active_slice() {
        let pkt = sim.packet(idx);
        let path = sim.path_of(idx);
        let set = sets[idx as usize];

        // I_b: current path must be a valid forward path.
        if pkt.validate_current_path(net, path).is_err() {
            report.invalid_current_paths += 1;
        }

        // I_c: inside the frame.
        let level = net.level(pkt.node());
        if !schedule.contains(set, phase, level) {
            report.frame_escapes += 1;
        } else if let Some(inner) = schedule.inner_level(set, phase, effective_level(idx, level)) {
            // I_f: rear three inner levels empty at phase end (packets at
            // inner level ≤ m − 4, so the frame can shift and inject).
            if inner + 3 >= schedule.m {
                report.rear_levels_occupied += 1;
            }
        }

        for e in pkt.current_path_edges(path) {
            scratch.bump(set, num_edges, e.0);
        }
    }
    for &idx in sim.pending_slice() {
        let path = sim.path_of(idx);
        let set = sets[idx as usize];
        for &e in path.edges() {
            scratch.bump(set, num_edges, e.0);
        }
    }

    // I_e: per-set congestion must not exceed its initial value. Zero the
    // counters on the way out so the scratch is clean for the next check.
    let mut per_set_max = vec![0u32; initial_per_set.len()];
    for &i in &scratch.touched {
        let s = i as usize / num_edges;
        per_set_max[s] = per_set_max[s].max(scratch.counts[i as usize]);
        scratch.counts[i as usize] = 0;
    }
    scratch.touched.clear();
    for (&now_max, &init) in per_set_max.iter().zip(initial_per_set) {
        if now_max > init {
            report.congestion_exceeded += 1;
        }
    }
    per_set_max
}

/// [`check_phase_end`] for the data-oriented engine: the same audits,
/// the same `O(N·L)` cost and the same scratch discipline, reading the
/// SoA layout (CSR preselected paths, arena deviation stacks) instead of
/// per-packet structs. Kept in this crate so both auditors share
/// [`PhaseAuditScratch`]; the golden-equivalence tests pin their reports
/// equal on the same runs.
#[allow(clippy::too_many_arguments)]
pub fn check_phase_end_soa<O: RouteObserver>(
    sim: &SoaEngine<O>,
    schedule: &FrameSchedule,
    sets: &[u32],
    phase: u64,
    initial_per_set: &[u32],
    effective_level: impl Fn(u32, leveled_net::Level) -> leveled_net::Level,
    scratch: &mut PhaseAuditScratch,
    report: &mut InvariantReport,
) -> Vec<u32> {
    report.phase_checks += 1;
    let net = sim.net();
    let num_edges = net.num_edges();
    let sh = sim.shared();
    scratch.reserve(initial_per_set.len().max(1), num_edges);

    for &idx in sim.active_slice() {
        let set = sets[idx as usize];

        // I_b + I_e, one walk: validate the current path as a forward
        // path while bumping each of its edges into the congestion
        // counts (the same checks `validate_current_path` performs,
        // fused with the `current_path_edges` traversal).
        let f = &sh.flight[idx as usize];
        let mut at = f.node;
        let mut valid = true;
        let mut cur = f.dev_head;
        while cur != hotpotato_sim::NO_MOVE {
            let mv = sh.dev_mv[cur as usize];
            // Backward moves cannot appear in a current path.
            valid &= mv & 1 == 0;
            let e = net.edge(leveled_net::EdgeId(mv >> 1));
            valid &= e.tail.0 == at;
            at = e.head.0;
            scratch.bump(set, num_edges, mv >> 1);
            cur = sh.dev_next[cur as usize];
        }
        for off in f.path_next..f.path_end {
            let mv = sh.path_mv[off as usize];
            let e = net.edge(leveled_net::EdgeId(mv >> 1));
            valid &= e.tail.0 == at;
            at = e.head.0;
            scratch.bump(set, num_edges, mv >> 1);
        }
        debug_assert_eq!(valid, sh.validate_current_path(net, idx));
        if !valid {
            report.invalid_current_paths += 1;
        }

        // I_c: inside the frame.
        let level = net.level(leveled_net::NodeId(f.node));
        if !schedule.contains(set, phase, level) {
            report.frame_escapes += 1;
        } else if let Some(inner) = schedule.inner_level(set, phase, effective_level(idx, level)) {
            // I_f: rear three inner levels empty at phase end.
            if inner + 3 >= schedule.m {
                report.rear_levels_occupied += 1;
            }
        }
    }
    // Pending packets count by their preselected paths. Maintained
    // incrementally: paths are immutable and the pending population only
    // shrinks, so subtract the paths of packets that left pending since
    // the last check rather than re-walking every still-pending path.
    let path_edges = |p: u32| {
        let i = p as usize;
        sh.path_mv[sh.path_off[i] as usize..sh.path_off[i + 1] as usize]
            .iter()
            .map(|&mv| mv >> 1)
    };
    if !scratch.pending_seeded {
        scratch.pending_seeded = true;
        scratch.pending_counts.resize(scratch.counts.len(), 0);
        scratch.pending_flag.resize(sets.len(), false);
        scratch
            .set_max
            .resize_with(initial_per_set.len(), SetMax::default);
        for &p in sim.pending_slice() {
            scratch.pending_members.push(p);
            for e in path_edges(p) {
                let i = sets[p as usize] as usize * num_edges + e as usize;
                scratch.pending_counts[i] += 1;
                let c = scratch.pending_counts[i];
                scratch.set_max[sets[p as usize] as usize].inc(c);
            }
        }
    } else {
        for &p in sim.pending_slice() {
            scratch.pending_flag[p as usize] = true;
        }
        let mut kept = 0;
        for m in 0..scratch.pending_members.len() {
            let p = scratch.pending_members[m];
            if scratch.pending_flag[p as usize] {
                scratch.pending_members[kept] = p;
                kept += 1;
                continue;
            }
            for e in path_edges(p) {
                let i = sets[p as usize] as usize * num_edges + e as usize;
                let c = scratch.pending_counts[i];
                scratch.pending_counts[i] = c - 1;
                scratch.set_max[sets[p as usize] as usize].dec(c);
            }
        }
        scratch.pending_members.truncate(kept);
        for &p in sim.pending_slice() {
            scratch.pending_flag[p as usize] = false;
        }
    }

    // I_e: per-set congestion must not exceed its initial value. The
    // combined (pending + active) max per set is the larger of the
    // pending-only max and the combined value on the edges active
    // packets touched: on the pending argmax edge the combined count is
    // at least the pending max, and every other edge either has no
    // active contribution (≤ pending max) or is in the touched list.
    let mut per_set_max: Vec<u32> = scratch.set_max.iter().map(|m| m.max).collect();
    for &i in &scratch.touched {
        let s = i as usize / num_edges;
        let combined = scratch.counts[i as usize] + scratch.pending_counts[i as usize];
        per_set_max[s] = per_set_max[s].max(combined);
        scratch.counts[i as usize] = 0;
    }
    scratch.touched.clear();
    for (&now_max, &init) in per_set_max.iter().zip(initial_per_set) {
        if now_max > init {
            report.congestion_exceeded += 1;
        }
    }
    per_set_max
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufferless_registry_ids_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for (id, desc) in BUFFERLESS_INVARIANTS {
            assert!(
                !id.is_empty() && id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "invariant id '{id}' must be non-empty kebab-case"
            );
            assert!(!desc.is_empty(), "invariant '{id}' needs a description");
            assert!(seen.insert(id), "duplicate invariant id '{id}'");
        }
        assert_eq!(BUFFERLESS_INVARIANTS.len(), 11);
    }

    #[test]
    fn empty_report_is_clean() {
        let r = InvariantReport::default();
        assert!(r.is_clean());
        assert_eq!(r.total_violations(), 0);
        assert!(r.summary().contains("Ia=0"));
    }

    #[test]
    fn counters_round_trip() {
        let r = InvariantReport {
            isolation_violations: 1,
            unsafe_deflections: 2,
            invalid_current_paths: 3,
            frame_escapes: 4,
            cross_set_meetings: 5,
            congestion_exceeded: 6,
            rear_levels_occupied: 7,
            phase_checks: 100,
        };
        let mut counters = BTreeMap::new();
        r.fold_into(&mut counters);
        assert_eq!(InvariantReport::from_counters(&counters), r);
        assert_eq!(
            InvariantReport::from_counters(&BTreeMap::new()),
            InvariantReport::default()
        );
    }

    #[test]
    fn totals_add_up() {
        let r = InvariantReport {
            isolation_violations: 1,
            unsafe_deflections: 2,
            invalid_current_paths: 3,
            frame_escapes: 4,
            cross_set_meetings: 5,
            congestion_exceeded: 6,
            rear_levels_occupied: 7,
            phase_checks: 100,
        };
        assert_eq!(r.total_violations(), 28);
        assert!(!r.is_clean());
    }
}
