//! The data-oriented step driver for [`crate::BuschRouter`].
//!
//! Runs the same algorithm as the scalar driver in `router.rs` — the
//! paper's states/targets/conflicts/injection (§3) — on
//! [`hotpotato_sim::SoaEngine`] instead of [`hotpotato_sim::Simulation`].
//! The per-packet algorithm state (state tag, oscillation edge) lives in
//! flat arrays ([`DriverState`]) mirroring the engine's SoA layout.
//!
//! One dispatch body, two decision modes (see `DESIGN.md` §11):
//!
//! * **Sequential** ([`BuschConfig::parallel_bands`] off): a single
//!   [`BandStage`] spans every occupied node and all randomness comes
//!   from the caller's rng, drawn in exactly the scalar driver's order —
//!   which makes this mode *bit-identical* to the scalar engine (stats,
//!   records, observer streams), as the golden-equivalence tests pin.
//! * **Banded** (`parallel_bands` on): nodes are partitioned into
//!   [`BANDS`] contiguous level bands, each with a persistent
//!   `ChaCha8Rng` stream seeded from the master rng at run start. Band
//!   count and node→band assignment depend only on the network, so
//!   results are identical whether the bands run on one thread or many
//!   (`HOTPOTATO_THREADS` is a speed knob, not a semantics knob). With
//!   ≥ 2 threads and ≥ 2 non-empty bands, a step's bands are dispatched
//!   concurrently on the process-wide worker pool.
//!
//! Why bands may run concurrently at all: during dispatch nothing
//! mutates the engine — every decision reads [`SoaShared`] and
//! [`DriverState`] behind `Arc`s — and every slot a band claims
//! *originates at a node of that band* (desired moves and oscillations
//! depart the packet's node; safe deflections reverse an edge whose
//! reversal departs it too), and each (edge, direction) slot has exactly
//! one origin node. Disjoint node sets therefore claim disjoint slots:
//! each band tracks its claims in a private bitset and no shared slot
//! state exists until [`SoaEngine::merge_band`] commits the bands — in
//! fixed band-index order, which is the reduction order that keeps the
//! merged staging sequence, and hence every downstream artifact,
//! deterministic. Deferred state updates are equivalent to the scalar
//! driver's in-place writes because all same-step reads of a packet's
//! state happen at its own node, inside its own band.

use crate::invariants::{check_phase_end_soa, InvariantReport, PhaseAuditScratch};
use crate::router::{BuschConfig, BuschOutcome};
use crate::schedule::{assign_sets, FrameSchedule};
use hotpotato_sim::conflict::{self, ConflictScratch, Contender, DeflectRule};
use hotpotato_sim::soa::{
    pack_move, unpack_move, KIND_ADVANCE, KIND_DEFLECT_FREE, KIND_DEFLECT_SAFE, KIND_OSCILLATE,
};
use hotpotato_sim::{
    BandStage, InjectOutcome, RouteObserver, Section, SoaEngine, SoaShared, Time, NO_MOVE,
};
use leveled_net::ids::DirectedEdge;
use leveled_net::{EdgeId, LeveledNetwork, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use routing_core::RoutingProblem;
use std::sync::{Arc, Mutex};

/// Number of level bands in banded mode. A constant (rather than the
/// thread count) so banded results are a pure function of (problem,
/// seed); 8 bands keep every machine size busy without fragmenting the
/// per-band rng streams.
pub(crate) const BANDS: usize = 8;

/// Packet state tags; numerically equal to the paper's conflict
/// priorities (excited > normal > wait), so `tag as u32` *is* the
/// [`Contender::priority`].
const TAG_WAIT: u8 = 0;
const TAG_NORMAL: u8 = 1;
const TAG_EXCITED: u8 = 2;

/// The algorithm's per-packet state in SoA form: the counterpart of
/// `Meta.state` in the scalar driver. Read-shared with band workers
/// behind an `Arc`; mutated only between dispatches via `Arc::get_mut`
/// (the band workers have dropped their clones by then).
struct DriverState {
    /// Per packet: the state tag (`TAG_*`) in the top 2 bits, and — for
    /// wait-state packets — the edge they oscillate on in the low 30.
    /// One word because every dispatch reads both halves together.
    tagwe: Vec<u32>,
}

/// Packs a (state tag, wait edge) pair into a [`DriverState::tagwe`] word.
#[inline]
fn pack_tagwe(tag: u8, we: u32) -> u32 {
    debug_assert!(we < 1 << 30, "edge id overflows the state word");
    ((tag as u32) << 30) | we
}

/// Everything a band needs per step beyond the shared state: copies of
/// the step clock decomposition and the configuration switches that
/// influence dispatch.
#[derive(Clone, Copy)]
struct StepCtx {
    round_start: bool,
    phase_start: bool,
    /// Integer form of the excitation draw `gen_bool(q)`: the vendored
    /// sampler is `(next_u64() >> 11) as f64 / 2^53 < q`, which for
    /// `0 < q < 1` is exactly `(next_u64() >> 11) < ceil(q · 2^53)` —
    /// both sides of the float compare are exact, so precomputing the
    /// integer threshold removes the float conversion from the hottest
    /// rng call without perturbing the pinned stream. `0` means no draw
    /// (matching the `q > 0` gate the scalar driver applies before
    /// calling `gen_bool`).
    exc_threshold: u64,
    /// `q >= 1.0`: every normal arrival excites, and — matching
    /// `gen_bool`'s early return — *without* consuming a draw.
    exc_always: bool,
    check_invariants: bool,
    rule: DeflectRule,
}

/// Per-band working set, persistent across steps: the staging buffer
/// (with its band-local slot bitset), resolver scratch, the deferred
/// state-update list, and per-band counters folded into the run totals
/// at merge time.
struct BandCtx {
    stage: BandStage,
    scratch: ConflictScratch,
    contenders: Vec<Contender>,
    /// (tag, wait_edge) per arrival of the node in hand — the node-local
    /// view of the state updates, so same-node reads see them before
    /// they are committed.
    tags_buf: Vec<(u8, u32)>,
    /// Deferred `DriverState` writes: (packet, packed tag + wait edge).
    updates: Vec<(u32, u32)>,
    /// Occupied nodes assigned to this band this step, ascending.
    nodes: Vec<u32>,
    excitations: u64,
    cross_set_meetings: u64,
    unsafe_deflections: u64,
}

impl BandCtx {
    fn new(net: Arc<LeveledNetwork>) -> Self {
        BandCtx {
            stage: BandStage::new(net),
            scratch: ConflictScratch::default(),
            contenders: Vec::new(),
            tags_buf: Vec::new(),
            updates: Vec::new(),
            nodes: Vec::new(),
            excitations: 0,
            cross_set_meetings: 0,
            unsafe_deflections: 0,
        }
    }
}

/// A band's full persistent state; in parallel steps each lives behind
/// its own `Arc<Mutex<..>>`, locked by exactly one worker per step.
struct BandState {
    rng: ChaCha8Rng,
    ctx: BandCtx,
}

/// Dispatches every node in `nodes`: folds the round/phase
/// demotions and excitation draws into the visit (exactly as the scalar
/// driver does), builds contenders, resolves conflicts against the
/// band-local slot bitset, and stages one exit per arrival. Mutates
/// nothing shared — updates and counters accumulate in `ctx` for the
/// merge.
// lint: hot-path
#[allow(clippy::too_many_arguments)]
fn dispatch_band<R: Rng + ?Sized>(
    net: &LeveledNetwork,
    sh: &SoaShared,
    st: &DriverState,
    sets: &[u32],
    targets: &[i64],
    sc: StepCtx,
    rng: &mut R,
    nodes: &[u32],
    ctx: &mut BandCtx,
) {
    for &v in nodes {
        let arrivals = sh.arrivals(v);

        // Most nodes host a single arrival, which cannot conflict: its
        // desired slot originates here and nobody else wants it. Decide
        // its state and exit without building contenders — the rng draw
        // sequence (one excitation draw per normal packet, in arrival
        // order) is exactly the general path's.
        if let [p] = *arrivals {
            let i = p as usize;
            let twe = st.tagwe[i];
            let mut tag = (twe >> 30) as u8;
            let mut we = twe & ((1 << 30) - 1);
            if sc.round_start && (tag == TAG_EXCITED || (tag == TAG_WAIT && sc.phase_start)) {
                tag = TAG_NORMAL;
            }
            if tag == TAG_NORMAL
                && (sc.exc_always
                    || (sc.exc_threshold != 0 && (rng.next_u64() >> 11) < sc.exc_threshold))
            {
                tag = TAG_EXCITED;
                ctx.excitations += 1;
            }
            let last = sh.flight[i].last_move;
            let (mv, kind) = if tag == TAG_WAIT {
                let e = net.edge(EdgeId(we));
                let mv = if v == e.head.0 {
                    (we << 1) | 1
                } else {
                    we << 1
                };
                (mv, KIND_OSCILLATE)
            } else {
                let arrived_fwd = last != NO_MOVE && last & 1 == 0;
                if arrived_fwd && net.level(NodeId(v)) as i64 == targets[sets[i] as usize] {
                    // Reached the target node: enter the wait state on
                    // the arrival edge (§3, "Wait state").
                    tag = TAG_WAIT;
                    we = last >> 1;
                    ((we << 1) | 1, KIND_OSCILLATE)
                } else {
                    let mv = sh.next_move(p);
                    debug_assert_ne!(mv, NO_MOVE, "active packets are not at their destination");
                    (mv, KIND_ADVANCE)
                }
            };
            ctx.stage.stage(p, mv, kind);
            let new_twe = pack_tagwe(tag, we);
            if new_twe != twe {
                ctx.updates.push((p, new_twe));
            }
            continue;
        }

        // Per-packet state pass: demotions at round/phase starts, then
        // the excitation draw — into the node-local tag buffer, since
        // this node's conflict resolution must see the updated states.
        ctx.tags_buf.clear();
        for &p in arrivals {
            let i = p as usize;
            let twe = st.tagwe[i];
            let mut tag = (twe >> 30) as u8;
            if sc.round_start && (tag == TAG_EXCITED || (tag == TAG_WAIT && sc.phase_start)) {
                tag = TAG_NORMAL;
            }
            if tag == TAG_NORMAL
                && (sc.exc_always
                    || (sc.exc_threshold != 0 && (rng.next_u64() >> 11) < sc.exc_threshold))
            {
                tag = TAG_EXCITED;
                ctx.excitations += 1;
            }
            ctx.tags_buf.push((tag, twe & ((1 << 30) - 1)));
        }

        // I_d: packets of different frontier-sets must not meet.
        if sc.check_invariants && arrivals.len() > 1 {
            let first = sets[arrivals[0] as usize];
            if arrivals[1..].iter().any(|&p| sets[p as usize] != first) {
                ctx.cross_set_meetings += 1;
            }
        }

        ctx.contenders.clear();
        for (j, &p) in arrivals.iter().enumerate() {
            let last = sh.flight[p as usize].last_move;
            let (tag, we) = ctx.tags_buf[j];
            let desired = if tag == TAG_WAIT {
                // Oscillate: back from the target (edge head), forward
                // from the rear node (edge tail).
                let e = net.edge(EdgeId(we));
                if v == e.head.0 {
                    DirectedEdge::backward(EdgeId(we))
                } else {
                    debug_assert_eq!(v, e.tail.0);
                    DirectedEdge::forward(EdgeId(we))
                }
            } else {
                let target = targets[sets[p as usize] as usize];
                let arrived_fwd = last != NO_MOVE && last & 1 == 0;
                if net.level(NodeId(v)) as i64 == target && arrived_fwd {
                    // Reached the target node: enter the wait state on
                    // the arrival edge (§3, "Wait state").
                    let edge = last >> 1;
                    ctx.tags_buf[j] = (TAG_WAIT, edge);
                    DirectedEdge::backward(EdgeId(edge))
                } else {
                    let mv = sh.next_move(p);
                    debug_assert_ne!(mv, NO_MOVE, "active packets are not at their destination");
                    unpack_move(mv)
                }
            };
            ctx.contenders.push(Contender {
                pkt: p,
                desired,
                priority: ctx.tags_buf[j].0 as u32,
                arrival: if last == NO_MOVE {
                    None
                } else {
                    Some(unpack_move(last))
                },
            });
        }

        // Fast path: a lone packet at a node cannot conflict — its
        // desired slot originates here and nobody else wants it.
        if let [c] = ctx.contenders[..] {
            let kind = if ctx.tags_buf[0].0 == TAG_WAIT {
                KIND_OSCILLATE
            } else {
                KIND_ADVANCE
            };
            ctx.stage.stage(c.pkt, pack_move(c.desired), kind);
        } else {
            let exits = conflict::resolve_into(
                &ctx.stage,
                NodeId(v),
                &ctx.contenders,
                sc.rule,
                rng,
                &mut ctx.scratch,
            )
            .expect("hot-potato assignment failed: arrival bound violated");
            // `resolve_into` returns exits in contender order, which is
            // arrival order — so exit j is arrival j, no matching needed.
            for (j, exit) in exits.iter().enumerate() {
                debug_assert_eq!(exit.pkt, arrivals[j]);
                let kind = if exit.won {
                    if ctx.tags_buf[j].0 == TAG_WAIT {
                        KIND_OSCILLATE
                    } else {
                        KIND_ADVANCE
                    }
                } else {
                    // Losers demote (§3: deflected excited and wait
                    // packets become normal).
                    ctx.tags_buf[j].0 = TAG_NORMAL;
                    if exit.safe {
                        KIND_DEFLECT_SAFE
                    } else {
                        ctx.unsafe_deflections += 1;
                        KIND_DEFLECT_FREE
                    }
                };
                ctx.stage.stage(exit.pkt, pack_move(exit.mv), kind);
            }
        }

        // Defer the state writes: commit them at merge time, in band
        // order. Equivalent to writing now — no other node reads them
        // this step.
        for (j, &p) in arrivals.iter().enumerate() {
            let (tag, we) = ctx.tags_buf[j];
            let i = p as usize;
            let twe = pack_tagwe(tag, we);
            if twe != st.tagwe[i] {
                ctx.updates.push((p, twe));
            }
        }
    }
}

/// The process-wide band worker pool, sized once from
/// `HOTPOTATO_THREADS` (capped at [`BANDS`] — more workers than bands
/// cannot help). Distinct from the bench sweep pool: a sweep of
/// banded runs uses both, which oversubscribes but cannot deadlock.
mod pool {
    use hotpotato_sim::pool_core::{configured_threads, PoolCore};
    use std::sync::OnceLock;

    static POOL: OnceLock<PoolCore> = OnceLock::new();

    pub(super) fn get() -> &'static PoolCore {
        POOL.get_or_init(|| PoolCore::new(configured_threads().min(super::BANDS), || {}))
    }
}

/// Routes `problem` on the data-oriented engine. Same contract and
/// event stream as the scalar driver; see the module docs for the
/// sequential/banded split.
// lint: telemetry
// (the `Instant` reads feed `on_section` profiling only; no routing
// decision depends on them)
pub(crate) fn route_soa<R: Rng + ?Sized, O: RouteObserver + ?Sized>(
    cfg: &BuschConfig,
    problem: &Arc<RoutingProblem>,
    rng: &mut R,
    observer: &mut O,
) -> BuschOutcome {
    let params = cfg.params;
    let net = problem.network_arc();
    let depth = net.depth();
    let schedule = FrameSchedule::new(params.m, params.num_sets, depth);
    let phase_len = params.phase_len();
    let max_steps = params.max_steps(depth).max(phase_len);

    // Random uniform frontier-set assignment (§2.4) — same draw as the
    // scalar driver.
    let sets_master = assign_sets(problem.num_packets(), params.num_sets, rng);
    observer.on_sets_assigned(&sets_master, params.num_sets);
    let sets: Arc<Vec<u32>> = Arc::new(sets_master.clone());

    let timing = observer.wants_timing();
    let mut sim = SoaEngine::new(Arc::clone(problem), cfg.trace, cfg.record, observer);
    let mut invariants = InvariantReport::default();
    let initial_per_set = if cfg.check_invariants {
        problem.per_set_congestion(sets.as_slice(), params.num_sets as usize)
    } else {
        Vec::new()
    };

    let n = problem.num_packets();
    let mut state = Arc::new(DriverState {
        tagwe: vec![(TAG_NORMAL as u32) << 30; n],
    });

    // Band setup. Sequential mode is one band over everything, fed by
    // the caller's rng; banded mode fixes BANDS contiguous level bands
    // with persistent per-band rng streams seeded from the master rng.
    let banded = cfg.parallel_bands;
    let num_bands = if banded {
        BANDS.min(net.num_levels())
    } else {
        1
    };
    let bands: Vec<Arc<Mutex<BandState>>> = if banded {
        (0..num_bands)
            .map(|_| {
                Arc::new(Mutex::new(BandState {
                    rng: ChaCha8Rng::seed_from_u64(rng.next_u64()),
                    ctx: BandCtx::new(Arc::clone(&net)),
                }))
            })
            .collect()
    } else {
        Vec::new()
    };
    // Sequential mode dispatches on this thread every step, so its
    // scratch lives outside the mutex vector: no per-step locks, no
    // partition copy (the engine's occupied list is the node list).
    let mut solo = BandCtx::new(Arc::clone(&net));
    let band_of = |v: u32| -> usize {
        if num_bands == 1 {
            0
        } else {
            net.level(NodeId(v)) as usize * num_bands / net.num_levels()
        }
    };
    let threads = hotpotato_sim::pool_core::configured_threads();

    // Injection agenda: (injection step, packet), sorted descending so
    // due packets pop off the back.
    let mut agenda: Vec<(Time, u32)> = (0..n as u32)
        .map(|p| {
            if cfg.eager_injection {
                return (0, p);
            }
            let src = problem.packets()[p as usize].path.source();
            let phase = schedule.injection_phase(sets[p as usize], net.level(src));
            (phase * phase_len, p)
        })
        .collect();
    agenda.sort_unstable_by(|a, b| b.cmp(a));
    let mut ready: Vec<u32> = Vec::new();

    let mut audit_scratch = PhaseAuditScratch::default();
    let mut total_moves = 0u64;
    // Per-set target levels, hoisted out of the per-packet dispatch:
    // they only change when (phase, round) does. Behind an Arc so band
    // workers can share the slice; refreshed via `get_mut` between
    // dispatches (the workers have dropped their clones by then).
    let mut targets: Arc<Vec<i64>> = Arc::new(vec![0; params.num_sets as usize]);
    let mut targets_key = (u64::MAX, u32::MAX);
    let rule = if cfg.arbitrary_deflections {
        DeflectRule::Arbitrary
    } else {
        DeflectRule::SafeBackward {
            allow_fallback: cfg.allow_fallback,
        }
    };
    // See `StepCtx::exc_threshold` for why this integer compare is
    // exactly the vendored `gen_bool(q)`.
    let exc_threshold = if params.q <= 0.0 || params.q >= 1.0 {
        0
    } else {
        (params.q * (1u64 << 53) as f64).ceil() as u64
    };
    let exc_always = params.q >= 1.0;

    while !sim.is_done() && sim.now() < max_steps {
        let t = sim.now();
        let phase = t / phase_len;
        let round = ((t / params.w as u64) % params.m as u64) as u32;
        let sc = StepCtx {
            round_start: t.is_multiple_of(params.w as u64),
            phase_start: t.is_multiple_of(phase_len),
            exc_threshold,
            exc_always,
            check_invariants: cfg.check_invariants,
            rule,
        };

        if sc.phase_start {
            let obs = sim.observer_mut();
            obs.on_phase_start(phase, t);
            for set in 0..params.num_sets {
                if schedule.frame_in_network(set, phase) {
                    obs.on_frontier(phase, set, schedule.frontier(set, phase));
                }
            }
        }
        // Fast-forward idle stretches: with nothing in flight, nothing
        // ready to retry, and nothing due before the next step, the only
        // work left in this phase is its end-of-phase audit — skip
        // straight to the next injection due time or the phase's last
        // step, whichever comes first. Emits the same per-step artifacts
        // a grinding loop would (see `SoaEngine::skip_idle`).
        if sim.shared().occupied.is_empty() && ready.is_empty() {
            let next_due = agenda.last().map_or(u64::MAX, |&(due, _)| due);
            if next_due > t {
                let phase_last = (phase + 1) * phase_len - 1;
                let skip_to = next_due.min(phase_last).min(max_steps - 1);
                if skip_to > t {
                    sim.skip_idle(skip_to - t);
                    continue;
                }
            }
        }

        if targets_key != (phase, round) {
            targets_key = (phase, round);
            let tg = Arc::get_mut(&mut targets).expect("band workers dropped target handles");
            for (set, t) in tg.iter_mut().enumerate() {
                *t = schedule.target_level(set as u32, phase, round);
            }
        }
        let section_start = if timing {
            Some(std::time::Instant::now())
        } else {
            None
        };

        // Partition this step's occupied nodes into the bands (ascending
        // node order is preserved within each band), then dispatch.
        let sh = Arc::clone(sim.shared());
        let mut busy = 0usize;
        if !banded {
            busy = usize::from(!sh.occupied.is_empty());
        } else if num_bands == 1 {
            let mut b = bands[0].try_lock().expect("band 0 is uncontended");
            b.ctx.nodes.clear();
            b.ctx.nodes.extend_from_slice(&sh.occupied);
            busy = usize::from(!b.ctx.nodes.is_empty());
        } else {
            for band in &bands {
                band.try_lock()
                    .expect("bands are uncontended")
                    .ctx
                    .nodes
                    .clear();
            }
            let mut cur = usize::MAX;
            let mut locked = None;
            for &v in &sh.occupied {
                let b = band_of(v);
                if b != cur {
                    cur = b;
                    busy += 1;
                    locked = Some(bands[b].try_lock().expect("bands are uncontended"));
                }
                locked.as_mut().expect("band locked").ctx.nodes.push(v);
            }
            drop(locked);
        }

        if banded && threads > 1 && busy >= 2 {
            // Parallel: one pool job per non-empty band. Workers read
            // the shared state behind Arcs, keep everything they produce
            // band-local, drop their Arc clones, then post.
            let results = Arc::new(hotpotato_sim::pool_core::BandResults::<
                Option<Box<dyn std::any::Any + Send>>,
            >::new(busy));
            let mut slot = 0usize;
            for band in &bands {
                if band
                    .try_lock()
                    .expect("bands are uncontended")
                    .ctx
                    .nodes
                    .is_empty()
                {
                    continue;
                }
                let band = Arc::clone(band);
                let net = Arc::clone(&net);
                let sh = Arc::clone(&sh);
                let st = Arc::clone(&state);
                let sets = Arc::clone(&sets);
                let targets = Arc::clone(&targets);
                let results = Arc::clone(&results);
                pool::get()
                    .submit(Box::new(move || {
                        let panic = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut b = band.lock().expect("band state");
                            let BandState { rng, ctx } = &mut *b;
                            let nodes = std::mem::take(&mut ctx.nodes);
                            dispatch_band(
                                &net,
                                &sh,
                                &st,
                                sets.as_slice(),
                                &targets,
                                sc,
                                rng,
                                &nodes,
                                ctx,
                            );
                            ctx.nodes = nodes;
                        }))
                        .err();
                        // Drop every shared handle *before* posting:
                        // after wait_all the coordinator reclaims
                        // exclusive access with Arc::get_mut.
                        drop(band);
                        drop(net);
                        drop(sh);
                        drop(st);
                        drop(sets);
                        drop(targets);
                        results.post(slot, panic);
                    }))
                    .expect("band pool is live");
                slot += 1;
            }
            if let Some(panic) = results.wait_all().into_iter().flatten().next() {
                std::panic::resume_unwind(panic);
            }
        } else if banded {
            // Banded but run on this thread: bands in band order.
            for band in &bands {
                let mut b = band.try_lock().expect("bands are uncontended");
                if b.ctx.nodes.is_empty() {
                    continue;
                }
                let BandState { rng: band_rng, ctx } = &mut *b;
                let nodes = std::mem::take(&mut ctx.nodes);
                dispatch_band(
                    &net,
                    &sh,
                    &state,
                    sets.as_slice(),
                    &targets,
                    sc,
                    band_rng,
                    &nodes,
                    ctx,
                );
                ctx.nodes = nodes;
            }
        } else if busy > 0 {
            // Sequential: the scalar-identical path — the master rng
            // feeds every draw in the scalar driver's order, and the
            // engine's occupied list is already the ascending node list.
            dispatch_band(
                &net,
                &sh,
                &state,
                sets.as_slice(),
                &targets,
                sc,
                rng,
                &sh.occupied,
                &mut solo,
            );
        }

        // Merge in band-index order: commit staged exits to the global
        // slot bitset, apply the deferred state writes, fold counters.
        let mut excitations = 0u64;
        {
            let st = Arc::get_mut(&mut state).expect("band workers dropped their state handles");
            let mut fold = |ctx: &mut BandCtx| {
                sim.merge_band(&mut ctx.stage);
                for &(p, twe) in &ctx.updates {
                    st.tagwe[p as usize] = twe;
                }
                ctx.updates.clear();
                excitations += std::mem::take(&mut ctx.excitations);
                invariants.cross_set_meetings += std::mem::take(&mut ctx.cross_set_meetings);
                invariants.unsafe_deflections += std::mem::take(&mut ctx.unsafe_deflections);
            };
            if banded {
                for band in &bands {
                    let mut b = band.try_lock().expect("bands are uncontended");
                    fold(&mut b.ctx);
                }
            } else {
                fold(&mut solo);
            }
        }
        if excitations > 0 {
            sim.stats_mut().bump_by("excitations", excitations);
        }
        let section_start = section_start.map(|start| {
            let now = std::time::Instant::now();
            sim.observer_mut()
                .on_section(Section::Conflict, (now - start).as_nanos() as u64);
            now
        });

        // Injections: admit packets whose phase has begun; retry the
        // blocked ones every subsequent step (§3, "Packet Injection").
        while let Some(&(due, p)) = agenda.last() {
            if due > t {
                break;
            }
            agenda.pop();
            ready.push(p);
        }
        ready.retain(|&p| {
            let src = problem.packets()[p as usize].path.source();
            let occupied_source = !sim.shared().arrivals(src.0).is_empty();
            match sim.try_inject(p) {
                InjectOutcome::Injected => {
                    if occupied_source {
                        invariants.isolation_violations += 1;
                    }
                    false
                }
                InjectOutcome::DeliveredTrivially => false,
                InjectOutcome::Blocked => {
                    sim.stats_mut().bump("injection_retries");
                    true
                }
            }
        });

        let section_start = section_start.map(|start| {
            let now = std::time::Instant::now();
            sim.observer_mut()
                .on_section(Section::Injection, (now - start).as_nanos() as u64);
            now
        });

        drop(sh);
        let report = sim.finish_step().expect("all arrivals staged");
        total_moves += report.moved as u64;
        let section_start = section_start.map(|start| {
            let now = std::time::Instant::now();
            sim.observer_mut()
                .on_section(Section::Kinematics, (now - start).as_nanos() as u64);
            now
        });

        // Phase-end audits (the paper states I_a..I_f at phase ends).
        if cfg.check_invariants && (t + 1).is_multiple_of(phase_len) {
            // Wait packets count at their target node (the head of
            // their oscillation edge), regardless of oscillation parity.
            let st = &state;
            let effective = |idx: u32, actual: leveled_net::Level| {
                let twe = st.tagwe[idx as usize];
                if (twe >> 30) as u8 == TAG_WAIT {
                    net.level(net.edge(EdgeId(twe & ((1 << 30) - 1))).head)
                } else {
                    actual
                }
            };
            let per_set_max = check_phase_end_soa(
                &sim,
                &schedule,
                sets.as_slice(),
                phase,
                &initial_per_set,
                effective,
                &mut audit_scratch,
                &mut invariants,
            );
            let obs = sim.observer_mut();
            for (set, (&now_max, &init)) in per_set_max.iter().zip(&initial_per_set).enumerate() {
                obs.on_set_congestion(phase, set as u32, now_max, init);
            }
            if let Some(start) = section_start {
                sim.observer_mut()
                    .on_section(Section::Audit, start.elapsed().as_nanos() as u64);
            }
        }
        if (t + 1).is_multiple_of(phase_len) {
            sim.observer_mut().on_phase_end(phase, t + 1);
        }
    }

    let phases_elapsed = sim.now() / phase_len;
    let (mut stats, record) = sim.into_parts();
    invariants.unsafe_deflections = invariants
        .unsafe_deflections
        .max(stats.counter("fallback_deflections"));
    stats.counters.insert("phases", phases_elapsed);
    stats.counters.insert("moves", total_moves);
    BuschOutcome {
        stats,
        invariants,
        set_assignment: sets_master,
        schedule,
        phases_elapsed,
        params,
        record,
    }
}
