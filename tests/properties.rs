//! Property-style tests for structural invariants across the whole stack:
//! topology builders, frame schedules, path kinematics, conflict
//! resolution, and engine conservation laws.
//!
//! Each test draws its cases from a seeded [`ChaCha8Rng`], so the sampled
//! parameter space is broad but the run is fully deterministic (the build
//! environment has no proptest; a fixed-seed sweep keeps the same coverage
//! style without the shrinking machinery).

use baselines::GreedyRouter;
use busch_router::BuschConfig;
use hotpotato_routing::prelude::*;
use hotpotato_sim::replay;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Runs `f` over `cases` parameter draws from a generator seeded per test.
fn sweep(test_seed: u64, cases: usize, mut f: impl FnMut(usize, &mut ChaCha8Rng)) {
    let mut rng = ChaCha8Rng::seed_from_u64(test_seed);
    for case in 0..cases {
        f(case, &mut rng);
    }
}

/// Random leveled networks are valid and routable (no dead ends).
#[test]
fn random_leveled_networks_are_valid() {
    sweep(0xA1, 64, |case, rng| {
        let depth = rng.gen_range(1u32..14);
        let max_w = rng.gen_range(1usize..7);
        let prob = rng.gen::<f64>();
        let net = builders::random_leveled(depth, 1..=max_w, prob, rng);
        assert!(net.validate().is_ok(), "case {case}");
        assert_eq!(net.depth(), depth, "case {case}");
        for v in net.nodes() {
            if net.level(v) < depth {
                assert!(!net.fwd_edges(v).is_empty(), "case {case}: dead end");
            }
            if net.level(v) > 0 {
                assert!(!net.bwd_edges(v).is_empty(), "case {case}: orphan");
            }
        }
    });
}

/// Frame schedules never overlap, shift one level per phase, and place
/// injections at the rear inner level.
#[test]
fn frame_schedules_are_sound() {
    sweep(0xA2, 64, |case, rng| {
        let m = rng.gen_range(3u32..12);
        let sets = rng.gen_range(1u32..8);
        let depth = rng.gen_range(1u32..40);
        let s = busch_router::FrameSchedule::new(m, sets, depth);
        for phase in 0..s.end_phase() {
            for i in 0..sets {
                // Shift: exactly one level per phase.
                assert_eq!(
                    s.frontier(i, phase + 1),
                    s.frontier(i, phase) + 1,
                    "case {case}"
                );
                // Non-overlap with every other frame.
                for j in (i + 1)..sets {
                    let (lo_i, _) = s.frame_range(i, phase);
                    let (_, hi_j) = s.frame_range(j, phase);
                    assert!(hi_j < lo_i, "case {case}: frames {i},{j} overlap");
                }
            }
        }
        for i in 0..sets {
            for level in 0..=depth {
                let inj = s.injection_phase(i, level);
                assert_eq!(s.inner_level(i, inj, level), Some(m - 1), "case {case}");
                assert!(inj < s.end_phase(), "case {case}");
            }
            assert!(!s.frame_in_network(i, s.end_phase()), "case {case}");
        }
    });
}

/// Uniformly sampled minimal paths are valid, minimal, and end at the
/// requested destination.
#[test]
fn sampled_paths_are_valid_minimal() {
    sweep(0xA3, 64, |case, rng| {
        let depth = rng.gen_range(2u32..10);
        let width = rng.gen_range(1usize..5);
        let net = builders::complete_leveled(depth, width);
        let src = net.nodes_at_level(0)[0];
        let dst = *net.nodes_at_level(depth).last().unwrap();
        let p = paths::random_minimal(&net, src, dst, rng).unwrap();
        assert!(p.validate(&net).is_ok(), "case {case}");
        assert_eq!(p.source(), src, "case {case}");
        assert_eq!(p.dest(&net), dst, "case {case}");
        assert_eq!(p.len() as u32, depth, "case {case}");
    });
}

/// Single-set partitioning reproduces total congestion; any partition
/// stays below it.
#[test]
fn per_set_congestion_bounds() {
    sweep(0xA4, 64, |case, rng| {
        let sets = rng.gen_range(1u32..9);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 16, rng).unwrap();
        let c = prob.congestion();
        let one = prob.per_set_congestion(&[0; 16], 1);
        assert_eq!(one[0], c, "case {case}");
        let assignment = busch_router::schedule::assign_sets(16, sets, rng);
        let per = prob.per_set_congestion(&assignment, sets as usize);
        assert_eq!(per.len(), sets as usize, "case {case}");
        for &ci in &per {
            assert!(ci <= c, "case {case}: set congestion {ci} > total {c}");
        }
        // The per-set maxima cover the full congestion: some edge attains C,
        // and its per-set parts sum to C, so sum of maxima >= C.
        let sum: u32 = per.iter().sum();
        assert!(sum >= c, "case {case}");
    });
}

/// Engine conservation under greedy routing: every packet is injected
/// exactly once, delivered exactly once, after its injection.
#[test]
fn greedy_conserves_packets() {
    sweep(0xA5, 64, |case, rng| {
        let n = rng.gen_range(1usize..24);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, n, rng).unwrap();
        let out = GreedyRouter::new().route(&prob, rng);
        assert!(out.stats.all_delivered(), "case {case}");
        assert_eq!(out.stats.delivered_count(), n, "case {case}");
        for (inj, del) in out.stats.injected_at.iter().zip(&out.stats.delivered_at) {
            let (i, d) = (inj.unwrap(), del.unwrap());
            assert!(d >= i, "case {case}: delivered before injection");
            assert!(d <= out.stats.steps_run, "case {case}");
        }
    });
}

/// The bufferless lower bound: no algorithm beats the longest path.
#[test]
fn makespan_at_least_longest_path() {
    sweep(0xA6, 64, |case, rng| {
        let n = rng.gen_range(1usize..16);
        let net = Arc::new(builders::complete_leveled(6, 3));
        let prob = workloads::random_pairs(&net, n, rng).unwrap();
        let longest = prob.packets().iter().map(|p| p.path.len()).max().unwrap() as u64;
        let g = GreedyRouter::new().route(&prob, rng);
        assert!(g.stats.makespan().unwrap() >= longest, "case {case}");
        let sf = StoreForwardRouter::fifo().route(&prob, rng);
        assert!(sf.stats.makespan().unwrap() >= longest, "case {case}");
    });
}

/// Busch routing delivers everything within its schedule bound for any
/// structurally valid scaled parameters.
#[test]
fn busch_delivers_for_arbitrary_scaled_params() {
    sweep(0xA7, 48, |case, rng| {
        let m = rng.gen_range(3u32..8);
        let w_mult = rng.gen_range(4u32..10);
        let sets = rng.gen_range(1u32..5);
        let q = rng.gen_range(0u32..20) as f64 / 20.0;
        let net = Arc::new(builders::butterfly(3));
        let prob = workloads::random_pairs(&net, 6, rng).unwrap();
        let params = Params::scaled(m, w_mult * m, q, sets);
        let out = BuschRouter::new(params).route(&prob, rng);
        assert!(
            out.stats.all_delivered(),
            "case {case} params {:?}: {}",
            params,
            out.stats.summary()
        );
        assert!(
            out.stats.makespan().unwrap() <= params.max_steps(net.depth()),
            "case {case}"
        );
    });
}

/// Every Busch run, under arbitrary structurally-valid parameters,
/// produces a record the independent replay auditor certifies.
#[test]
fn busch_always_replays_cleanly() {
    sweep(0xA8, 32, |case, rng| {
        let m = rng.gen_range(3u32..7);
        let w_mult = rng.gen_range(3u32..8);
        let sets = rng.gen_range(1u32..4);
        let net = Arc::new(builders::butterfly(3));
        let prob = workloads::random_pairs(&net, 6, rng).unwrap();
        let cfg = BuschConfig {
            record: true,
            ..BuschConfig::new(Params::scaled(m, w_mult * m, 0.1, sets))
        };
        let out = busch_router::BuschRouter::with_config(cfg).route(&prob, rng);
        let record = out.record.as_ref().expect("recording on");
        let report = replay::verify(&prob, record, &out.stats);
        assert!(
            report.is_ok(),
            "case {case}: replay failed: {:?}",
            report.err()
        );
    });
}

/// Store-and-forward with bounded buffers of any capacity delivers and
/// respects the capacity bound.
#[test]
fn bounded_store_forward_respects_capacity() {
    sweep(0xA9, 64, |case, rng| {
        let cap = rng.gen_range(1usize..6);
        let n = rng.gen_range(1usize..16);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, n, rng).unwrap();
        let cfg = hotpotato_sim::store_forward::StoreForwardConfig {
            buffer_cap: cap,
            ..Default::default()
        };
        let out = hotpotato_sim::store_forward::route(&prob, cfg, rng);
        assert!(out.stats.all_delivered(), "case {case}");
        assert!(
            out.max_queue <= cap,
            "case {case}: queue {} exceeded cap {}",
            out.max_queue,
            cap
        );
    });
}

/// Store-and-forward with FIFO takes at most (roughly) C·D + C + D
/// steps on any instance — queues can't hold a packet longer than the
/// traffic crossing its path.
#[test]
fn store_forward_is_politely_bounded() {
    sweep(0xAA, 64, |case, rng| {
        let n = rng.gen_range(1usize..20);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, n, rng).unwrap();
        let out = StoreForwardRouter::fifo().route(&prob, rng);
        assert!(out.stats.all_delivered(), "case {case}");
        let c = prob.congestion() as u64;
        let d = prob.dilation() as u64;
        assert!(
            out.stats.makespan().unwrap() <= c * d + c + d + 1,
            "case {case}"
        );
    });
}
