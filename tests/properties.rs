//! Property-based tests (proptest) for structural invariants across the
//! whole stack: topology builders, frame schedules, path kinematics,
//! conflict resolution, and engine conservation laws.

use baselines::GreedyRouter;
use busch_router::BuschConfig;
use hotpotato_routing::prelude::*;
use hotpotato_sim::replay;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random leveled networks are valid and routable (no dead ends).
    #[test]
    fn random_leveled_networks_are_valid(
        seed in 0u64..10_000,
        depth in 1u32..14,
        max_w in 1usize..7,
        prob in 0.0f64..1.0,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = builders::random_leveled(depth, 1..=max_w, prob, &mut rng);
        prop_assert!(net.validate().is_ok());
        prop_assert_eq!(net.depth(), depth);
        for v in net.nodes() {
            if net.level(v) < depth {
                prop_assert!(!net.fwd_edges(v).is_empty());
            }
            if net.level(v) > 0 {
                prop_assert!(!net.bwd_edges(v).is_empty());
            }
        }
    }

    /// Frame schedules never overlap, shift one level per phase, and place
    /// injections at the rear inner level.
    #[test]
    fn frame_schedules_are_sound(
        m in 3u32..12,
        sets in 1u32..8,
        depth in 1u32..40,
    ) {
        let s = busch_router::FrameSchedule::new(m, sets, depth);
        for phase in 0..s.end_phase() {
            for i in 0..sets {
                // Shift: exactly one level per phase.
                prop_assert_eq!(s.frontier(i, phase + 1), s.frontier(i, phase) + 1);
                // Non-overlap with every other frame.
                for j in (i + 1)..sets {
                    let (lo_i, _) = s.frame_range(i, phase);
                    let (_, hi_j) = s.frame_range(j, phase);
                    prop_assert!(hi_j < lo_i);
                }
            }
        }
        for i in 0..sets {
            for level in 0..=depth {
                let inj = s.injection_phase(i, level);
                prop_assert_eq!(s.inner_level(i, inj, level), Some(m - 1));
                prop_assert!(inj < s.end_phase());
            }
            prop_assert!(!s.frame_in_network(i, s.end_phase()));
        }
    }

    /// Uniformly sampled minimal paths are valid, minimal, and end at the
    /// requested destination.
    #[test]
    fn sampled_paths_are_valid_minimal(
        seed in 0u64..10_000,
        depth in 2u32..10,
        width in 1usize..5,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = builders::complete_leveled(depth, width);
        let src = net.nodes_at_level(0)[0];
        let dst = *net.nodes_at_level(depth).last().unwrap();
        let p = paths::random_minimal(&net, src, dst, &mut rng).unwrap();
        prop_assert!(p.validate(&net).is_ok());
        prop_assert_eq!(p.source(), src);
        prop_assert_eq!(p.dest(&net), dst);
        prop_assert_eq!(p.len() as u32, depth);
    }

    /// Single-set partitioning reproduces total congestion; any partition
    /// stays below it.
    #[test]
    fn per_set_congestion_bounds(
        seed in 0u64..10_000,
        sets in 1u32..9,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 16, &mut rng).unwrap();
        let c = prob.congestion();
        let one = prob.per_set_congestion(&[0; 16], 1);
        prop_assert_eq!(one[0], c);
        let assignment = busch_router::schedule::assign_sets(16, sets, &mut rng);
        let per = prob.per_set_congestion(&assignment, sets as usize);
        prop_assert_eq!(per.len(), sets as usize);
        for &ci in &per {
            prop_assert!(ci <= c);
        }
        // The per-set maxima cover the full congestion: some edge attains C,
        // and its per-set parts sum to C, so sum of maxima >= C.
        let sum: u32 = per.iter().sum();
        prop_assert!(sum >= c);
    }

    /// Engine conservation under greedy routing: every packet is injected
    /// exactly once, delivered exactly once, after its injection.
    #[test]
    fn greedy_conserves_packets(
        seed in 0u64..10_000,
        n in 1usize..24,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, n, &mut rng).unwrap();
        let out = GreedyRouter::new().route(&prob, &mut rng);
        prop_assert!(out.stats.all_delivered());
        prop_assert_eq!(out.stats.delivered_count(), n);
        for (inj, del) in out.stats.injected_at.iter().zip(&out.stats.delivered_at) {
            let (i, d) = (inj.unwrap(), del.unwrap());
            prop_assert!(d >= i);
            prop_assert!(d <= out.stats.steps_run);
        }
    }

    /// The bufferless lower bound: no algorithm beats the longest path.
    #[test]
    fn makespan_at_least_longest_path(
        seed in 0u64..10_000,
        n in 1usize..16,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::complete_leveled(6, 3));
        let prob = workloads::random_pairs(&net, n, &mut rng).unwrap();
        let longest = prob.packets().iter().map(|p| p.path.len()).max().unwrap() as u64;
        let g = GreedyRouter::new().route(&prob, &mut rng);
        prop_assert!(g.stats.makespan().unwrap() >= longest);
        let sf = StoreForwardRouter::fifo().route(&prob, &mut rng);
        prop_assert!(sf.stats.makespan().unwrap() >= longest);
    }

    /// Busch routing delivers everything within its schedule bound for any
    /// structurally valid scaled parameters.
    #[test]
    fn busch_delivers_for_arbitrary_scaled_params(
        seed in 0u64..1_000,
        m in 3u32..8,
        w_mult in 4u32..10,
        sets in 1u32..5,
        q_t in 0u32..20,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(3));
        let prob = workloads::random_pairs(&net, 6, &mut rng).unwrap();
        let q = q_t as f64 / 20.0;
        let params = Params::scaled(m, w_mult * m, q, sets);
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        prop_assert!(
            out.stats.all_delivered(),
            "params {:?}: {}", params, out.stats.summary()
        );
        prop_assert!(out.stats.makespan().unwrap() <= params.max_steps(net.depth()));
    }

    /// Every Busch run, under arbitrary structurally-valid parameters,
    /// produces a record the independent replay auditor certifies.
    #[test]
    fn busch_always_replays_cleanly(
        seed in 0u64..500,
        m in 3u32..7,
        w_mult in 3u32..8,
        sets in 1u32..4,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(3));
        let prob = workloads::random_pairs(&net, 6, &mut rng).unwrap();
        let cfg = BuschConfig {
            record: true,
            ..BuschConfig::new(Params::scaled(m, w_mult * m, 0.1, sets))
        };
        let out = busch_router::BuschRouter::with_config(cfg).route(&prob, &mut rng);
        let record = out.record.as_ref().expect("recording on");
        let report = replay::verify(&prob, record, &out.stats);
        prop_assert!(report.is_ok(), "replay failed: {:?}", report.err());
    }

    /// Store-and-forward with bounded buffers of any capacity delivers and
    /// respects the capacity bound.
    #[test]
    fn bounded_store_forward_respects_capacity(
        seed in 0u64..10_000,
        cap in 1usize..6,
        n in 1usize..16,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, n, &mut rng).unwrap();
        let cfg = hotpotato_sim::store_forward::StoreForwardConfig {
            buffer_cap: cap,
            ..Default::default()
        };
        let out = hotpotato_sim::store_forward::route(&prob, cfg, &mut rng);
        prop_assert!(out.stats.all_delivered());
        prop_assert!(out.max_queue <= cap, "queue {} exceeded cap {}", out.max_queue, cap);
    }

    /// Store-and-forward with FIFO takes at most (roughly) C·D + C + D
    /// steps on any instance — queues can't hold a packet longer than the
    /// traffic crossing its path.
    #[test]
    fn store_forward_is_politely_bounded(
        seed in 0u64..10_000,
        n in 1usize..20,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, n, &mut rng).unwrap();
        let out = StoreForwardRouter::fifo().route(&prob, &mut rng);
        prop_assert!(out.stats.all_delivered());
        let c = prob.congestion() as u64;
        let d = prob.dilation() as u64;
        prop_assert!(out.stats.makespan().unwrap() <= c * d + c + d + 1);
    }
}
