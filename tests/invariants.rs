//! Integration tests of the paper's §4 invariants `I_a..I_f`: in the
//! regimes the analysis covers (adequate frame height, round length, and
//! set count for the congestion at hand), runs must be *clean* — zero
//! violations. These are the strongest end-to-end checks in the suite:
//! they assert the algorithm behaves exactly as the proofs describe, not
//! merely that packets arrive.

use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_routing::prelude::*;
use leveled_net::builders::ButterflyCoords;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

#[test]
fn invariants_clean_on_butterfly_random_pairs_across_seeds() {
    for seed in 0..8u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 16, &mut rng).unwrap();
        // Generous parameters: one set per congestion unit, tall frames.
        let params = Params::scaled(8, 96, 0.1, prob.congestion().max(1));
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        assert!(
            out.stats.all_delivered(),
            "seed {seed}: {}",
            out.stats.summary()
        );
        assert!(
            out.invariants.is_clean(),
            "seed {seed}: {}",
            out.invariants.summary()
        );
    }
}

#[test]
fn invariants_clean_on_permutation_with_generous_params() {
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = 4;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_permutation(&net, &coords, &mut rng);
        let params = Params::scaled(8, 96, 0.1, prob.congestion().max(1));
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "seed {seed}");
        assert!(
            out.invariants.is_clean(),
            "seed {seed}: {}",
            out.invariants.summary()
        );
    }
}

#[test]
fn safe_only_mode_never_needs_fallback_in_covered_regimes() {
    // With fallback disabled, any situation outside Lemma 2.1's guarantee
    // panics. A clean pass is therefore a hard proof-shaped check of the
    // safe-deflection machinery.
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 12, &mut rng).unwrap();
        let cfg = BuschConfig {
            allow_fallback: false,
            ..BuschConfig::new(Params::scaled(8, 96, 0.1, prob.congestion().max(1)))
        };
        let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "seed {seed}");
        assert_eq!(out.stats.counter("fallback_deflections"), 0);
    }
}

#[test]
fn isolation_holds_under_scheduled_injection() {
    // I_a specifically: across seeds, no packet is ever injected while
    // another packet occupies its source node.
    for seed in 0..6u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::complete_leveled(9, 4));
        let prob = workloads::funnel(&net, 12, &mut rng).unwrap();
        let params = Params::scaled(7, 84, 0.1, prob.congestion().max(1));
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "seed {seed}");
        assert_eq!(out.invariants.isolation_violations, 0, "seed {seed}");
    }
}

#[test]
fn congestion_never_increases_lemma_4_10() {
    // I_e: the frontier-set congestion of current paths never exceeds the
    // initial per-set congestion (edge recycling under safe deflections).
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let k = 5;
        let net = Arc::new(builders::butterfly(k));
        let coords = ButterflyCoords { k };
        let prob = workloads::butterfly_bit_reversal(&net, &coords);
        let params = Params::scaled(8, 96, 0.1, prob.congestion().max(1));
        let out = BuschRouter::new(params).route(&prob, &mut rng);
        assert!(out.stats.all_delivered(), "seed {seed}");
        assert_eq!(out.invariants.congestion_exceeded, 0, "seed {seed}");
        assert_eq!(out.invariants.invalid_current_paths, 0, "seed {seed}");
    }
}

#[test]
fn deviation_depth_stays_small_inside_frames() {
    // §1.2: packets stay within polylog distance of their preselected
    // paths. Inside a frame of height m, deviation can never exceed m.
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let net = Arc::new(builders::butterfly(5));
    let prob = workloads::random_pairs(&net, 24, &mut rng).unwrap();
    let params = Params::scaled(8, 96, 0.1, prob.congestion().max(1));
    let out = BuschRouter::new(params).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    assert!(out.invariants.is_clean(), "{}", out.invariants.summary());
    assert!(
        out.stats.max_deviation_overall() <= params.m,
        "deviation {} exceeds frame height {}",
        out.stats.max_deviation_overall(),
        params.m
    );
}

#[test]
fn cross_set_meetings_never_happen_when_frames_hold() {
    let mut rng = ChaCha8Rng::seed_from_u64(21);
    let net = Arc::new(builders::complete_leveled(12, 4));
    let prob = workloads::hotspot(&net, 20, 3, &mut rng).unwrap();
    let params = Params::scaled(6, 72, 0.1, 4);
    let out = BuschRouter::new(params).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    assert_eq!(out.invariants.cross_set_meetings, 0);
    assert_eq!(out.invariants.frame_escapes, 0);
}

#[test]
fn undersized_frames_are_detected_not_hidden() {
    // Sanity of the checker itself: with pathologically short rounds the
    // run may still deliver (grace phases) but the invariant report must
    // notice that frames could not hold, rather than reporting clean.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let k = 5;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords); // C = 8
                                                                 // One set for C=8 congestion and w too short to park packets.
    let params = Params::scaled(3, 3, 0.0, 1);
    let out = BuschRouter::new(params).route(&prob, &mut rng);
    assert!(
        !out.invariants.is_clean(),
        "undersized parameters must surface violations: {}",
        out.invariants.summary()
    );
}
