//! Integration tests of the `hotpotato` CLI binary.

use std::process::Command;

fn hotpotato(args: &[&str]) -> (String, String, i32) {
    let out = Command::new(env!("CARGO_BIN_EXE_hotpotato"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code().unwrap_or(-1),
    )
}

#[test]
fn help_prints_usage() {
    let (_, err, code) = hotpotato(&["--help"]);
    assert_eq!(code, 0);
    assert!(err.contains("usage:"));
    assert!(err.contains("butterfly:K"));
}

#[test]
fn unknown_command_fails() {
    let (_, err, code) = hotpotato(&["frobnicate"]);
    assert_eq!(code, 2);
    assert!(err.contains("unknown command"));
}

#[test]
fn topo_summary_and_dot() {
    let (out, _, code) = hotpotato(&["topo", "butterfly:3"]);
    assert_eq!(code, 0);
    assert!(out.contains("butterfly(3): 32 nodes, 48 edges, depth L = 3"));

    let (dot, _, code) = hotpotato(&["topo", "linear:4", "--dot"]);
    assert_eq!(code, 0);
    assert!(dot.starts_with("digraph"));
    assert_eq!(dot.matches(" -> ").count(), 3);
}

#[test]
fn topo_rejects_bad_specs() {
    for bad in ["nosuch:3", "mesh:8", "mesh:4x4:xx", "butterfly"] {
        let (_, err, code) = hotpotato(&["topo", bad]);
        assert_eq!(code, 2, "spec {bad}");
        assert!(err.contains("error:"), "spec {bad}: {err}");
    }
}

#[test]
fn route_busch_with_verify() {
    let (out, err, code) = hotpotato(&[
        "route",
        "--topo",
        "butterfly:4",
        "--workload",
        "permutation",
        "--algo",
        "busch",
        "--seed",
        "7",
        "--verify",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    assert!(out.contains("delivered 16/16"), "{out}");
    assert!(out.contains("replay:   VERIFIED"), "{out}");
    assert!(out.contains("invariants: Ia=0"), "{out}");
}

#[test]
fn route_with_explicit_params() {
    let (out, _, code) = hotpotato(&[
        "route",
        "--topo",
        "linear:8",
        "--workload",
        "level:0:7",
        "--algo",
        "busch",
        "--params",
        "3,9,0.1,1",
    ]);
    assert_eq!(code, 0);
    assert!(out.contains("m=3 w=9"), "{out}");
    assert!(out.contains("delivered 1/1"), "{out}");
}

#[test]
fn route_all_baselines() {
    for algo in ["greedy", "ftg", "rank", "sf", "sfrank"] {
        let (out, err, code) = hotpotato(&[
            "route",
            "--topo",
            "complete:6x3",
            "--workload",
            "pairs:6",
            "--algo",
            algo,
        ]);
        assert_eq!(code, 0, "algo {algo}: {err}");
        assert!(out.contains("delivered 6/6"), "algo {algo}: {out}");
    }
}

#[test]
fn route_workload_topology_mismatch() {
    let (_, err, code) = hotpotato(&["route", "--topo", "linear:5", "--workload", "permutation"]);
    assert_eq!(code, 2);
    assert!(err.contains("butterfly"), "{err}");
}

#[test]
fn params_calculator_matches_theorem() {
    let (out, _, code) = hotpotato(&["params", "64", "32", "1024"]);
    assert_eq!(code, 0);
    assert!(out.contains("paper parameters for C=64, L=32, N=1024"));
    assert!(out.contains("success ≥"));
    // The Õ factor line mentions ln⁹.
    assert!(out.contains("ln⁹(LN)"));
}

#[test]
fn frames_renders_pipeline() {
    let (out, _, code) = hotpotato(&["frames", "6", "3", "2"]);
    assert_eq!(code, 0);
    assert!(out.contains("phase    0"));
    assert!(out.contains("(all frames gone at phase 12)"));
}

#[test]
fn out_of_range_inputs_get_clean_errors_not_panics() {
    let cases: &[&[&str]] = &[
        &["topo", "butterfly:30"],
        &["topo", "benes:0"],
        &["frames", "6", "2", "1"],
        &["frames", "6", "4", "0"],
        &[
            "route",
            "--topo",
            "linear:5",
            "--workload",
            "level:0:4",
            "--params",
            "2,9,0.1,1",
        ],
    ];
    for args in cases {
        let (_, err, code) = hotpotato(args);
        assert_eq!(code, 2, "args {args:?} must fail cleanly, got: {err}");
        assert!(
            !err.contains("panicked"),
            "args {args:?} panicked instead of erroring: {err}"
        );
    }
}

#[test]
fn route_json_output_is_machine_readable() {
    let (out, err, code) = hotpotato(&[
        "route",
        "--topo",
        "butterfly:4",
        "--workload",
        "pairs:6",
        "--json",
    ]);
    assert_eq!(code, 0, "stderr: {err}");
    let doc: serde_json::Value = serde_json::from_str(&out).expect("valid JSON");
    assert_eq!(doc["algorithm"], "busch");
    assert_eq!(doc["stats"]["deflections"].as_array().unwrap().len(), 6);
    assert!(doc["invariants"]["phase_checks"].as_u64().unwrap() > 0);
    assert!(doc["params"]["m"].as_u64().unwrap() >= 3);
}

#[test]
fn deterministic_given_seed() {
    let run = || {
        hotpotato(&[
            "route",
            "--topo",
            "butterfly:4",
            "--workload",
            "pairs:8",
            "--seed",
            "123",
        ])
        .0
    };
    assert_eq!(run(), run());
}
