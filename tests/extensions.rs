//! Integration tests for the extension features beyond the paper's core
//! setting: many-to-many (relaxed) problems, Beneš networks, and routing
//! on levelized arbitrary DAGs.

use baselines::{GreedyConfig, GreedyRouter, StoreForwardRouter};
use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_routing::prelude::*;
use hotpotato_sim::replay;
use leveled_net::levelize::Dag;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::dag::{self, DagNetwork};
use std::sync::Arc;

#[test]
fn many_to_many_routes_with_all_algorithms() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let net = Arc::new(builders::butterfly(4));
    // 3x more packets than nodes with forward edges: sources collide.
    let prob = workloads::many_to_many(&net, 120, &mut rng).unwrap();
    assert!(prob.is_relaxed());

    let busch = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
    assert!(busch.stats.all_delivered(), "{}", busch.stats.summary());

    let greedy = GreedyRouter::new().route(&prob, &mut rng);
    assert!(greedy.stats.all_delivered());

    let sf = StoreForwardRouter::fifo().route(&prob, &mut rng);
    assert!(sf.stats.all_delivered());
}

#[test]
fn many_to_many_busch_counts_isolation_but_keeps_physics() {
    // With colliding sources, the paper's isolation guarantee cannot hold
    // — the router must count violations (or delay injections), never
    // break the engine model. The replay auditor confirms the latter.
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let net = Arc::new(builders::butterfly(4));
    let prob = workloads::many_to_many(&net, 200, &mut rng).unwrap();
    let cfg = BuschConfig {
        record: true,
        ..BuschConfig::new(Params::auto(&prob))
    };
    let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered(), "{}", out.stats.summary());
    replay::verify(&prob, out.record.as_ref().unwrap(), &out.stats)
        .expect("hot-potato physics hold in the relaxed model");
}

#[test]
fn benes_permutations_route() {
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let (raw, _) = leveled_net::builders::benes(3);
    let net = Arc::new(raw);
    // Permutation from level 0 to level 2k. Generous frames (m = 8) so
    // the strict I_f check has its three levels of slack.
    let prob = workloads::level_to_level(&net, 0, net.depth(), &mut rng).unwrap();
    let params = Params::scaled(8, 96, 0.1, prob.congestion().max(1));
    let busch = BuschRouter::new(params).route(&prob, &mut rng);
    assert!(busch.stats.all_delivered(), "{}", busch.stats.summary());
    assert!(
        busch.invariants.is_clean(),
        "{}",
        busch.invariants.summary()
    );
    let greedy = GreedyRouter::new().route(&prob, &mut rng);
    assert!(greedy.stats.all_delivered());
}

#[test]
fn random_dags_route_end_to_end() {
    for seed in 0..5u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + seed);
        let n = 40;
        let mut dagg = Dag::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen_bool(0.12) {
                    dagg.add_edge(u, v);
                }
            }
        }
        let dagnet = DagNetwork::new(&dagg).unwrap();
        let Ok(prob) = dag::random_dag_pairs(&dagnet, 12, &mut rng) else {
            continue; // too sparse this seed; acceptable
        };
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(
            out.stats.all_delivered(),
            "seed {seed}: {}",
            out.stats.summary()
        );
        assert!(
            out.invariants.is_clean(),
            "seed {seed}: {}",
            out.invariants.summary()
        );
    }
}

#[test]
fn dag_routing_with_recording_replays() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let mut dagg = Dag::new(30);
    for u in 0..30u32 {
        for v in (u + 1)..30u32 {
            if rng.gen_bool(0.2) {
                dagg.add_edge(u, v);
            }
        }
    }
    let dagnet = DagNetwork::new(&dagg).unwrap();
    let prob = dag::random_dag_pairs(&dagnet, 8, &mut rng).unwrap();
    let cfg = GreedyConfig {
        record: true,
        ..Default::default()
    };
    let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    replay::verify(&prob, out.record.as_ref().unwrap(), &out.stats).expect("clean replay");
}

#[test]
fn relaxed_empty_and_duplicate_trivials() {
    // Degenerate relaxed problems: several trivial packets at one node.
    let net = Arc::new(builders::linear_array(3));
    let prob = Arc::new(routing_core::RoutingProblem::new_relaxed(
        Arc::clone(&net),
        vec![
            routing_core::Path::trivial(leveled_net::NodeId(1)),
            routing_core::Path::trivial(leveled_net::NodeId(1)),
        ],
    ));
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let out = GreedyRouter::new().route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    assert_eq!(out.stats.makespan(), Some(0));
}
