//! Full-run replay audits: every move of complete routing runs is
//! re-verified from scratch by the independent auditor in
//! `hotpotato_sim::replay` — slot capacity, no-resting, no teleports,
//! injection legality, absorption-on-arrival, and delivery consistency.

use baselines::{GreedyConfig, GreedyRouter};
use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_routing::prelude::*;
use hotpotato_sim::replay;
use leveled_net::builders::{ButterflyCoords, MeshCorner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

#[test]
fn busch_runs_replay_cleanly_across_workloads() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let cases: Vec<Arc<routing_core::RoutingProblem>> = vec![
        {
            let net = Arc::new(builders::butterfly(4));
            workloads::random_pairs(&net, 16, &mut rng).unwrap()
        },
        {
            let net = Arc::new(builders::butterfly(5));
            let coords = ButterflyCoords { k: 5 };
            workloads::butterfly_permutation(&net, &coords, &mut rng)
        },
        {
            let (raw, coords) = builders::mesh(6, 6, MeshCorner::TopLeft);
            workloads::mesh_transpose(&Arc::new(raw), &coords).unwrap()
        },
        {
            let net = Arc::new(builders::complete_leveled(10, 4));
            workloads::funnel(&net, 12, &mut rng).unwrap()
        },
    ];
    for prob in &cases {
        let cfg = BuschConfig {
            record: true,
            ..BuschConfig::new(Params::auto(prob))
        };
        let out = BuschRouter::with_config(cfg).route(prob, &mut rng);
        assert!(out.stats.all_delivered(), "{}", prob.describe());
        let record = out.record.as_ref().expect("recording enabled");
        let report = replay::verify(prob, record, &out.stats)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", prob.describe()));
        assert_eq!(report.delivered, prob.num_packets());
        assert_eq!(report.moves as usize, record.len());
        // Busch moves packets both ways (oscillation + deflections) except
        // on conflict-free instances.
        assert!(report.forward >= report.backward);
        assert_eq!(report.last_move_time + 1, out.stats.makespan().unwrap());
    }
}

#[test]
fn greedy_runs_replay_cleanly() {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let k = 6;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let cfg = GreedyConfig {
        record: true,
        ..Default::default()
    };
    let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    let record = out.record.as_ref().expect("recording enabled");
    let report = replay::verify(&prob, record, &out.stats).expect("replay clean");
    assert_eq!(report.delivered, prob.num_packets());
}

#[test]
fn arbitrary_deflection_ablation_still_obeys_physics() {
    // Even the A4 ablation variant must respect the hot-potato model —
    // only the *paper's* invariants break, never the engine's.
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let k = 5;
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let cfg = BuschConfig {
        record: true,
        arbitrary_deflections: true,
        ..BuschConfig::new(Params::scaled(6, 36, 0.1, 2))
    };
    let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
    let record = out.record.as_ref().expect("recording enabled");
    replay::verify(&prob, record, &out.stats).expect("physics hold under ablation");
}

#[test]
fn record_length_matches_move_accounting() {
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let net = Arc::new(builders::butterfly(4));
    let prob = workloads::random_pairs(&net, 8, &mut rng).unwrap();
    let cfg = GreedyConfig {
        record: true,
        ..Default::default()
    };
    let out = GreedyRouter::with_config(cfg).route(&prob, &mut rng);
    let record = out.record.unwrap();
    // Every packet contributes at least path-length moves.
    let min_moves: usize = prob.packets().iter().map(|p| p.path.len()).sum();
    assert!(record.len() >= min_moves);
    // Deflections add exactly two extra moves each (out and back) on a
    // butterfly where deflections are backward.
    let deflections: u64 = out.stats.total_deflections();
    assert_eq!(record.len() as u64, min_moves as u64 + 2 * deflections);
}
