//! End-to-end integration: every topology × every algorithm delivers every
//! packet, and the outcomes respect the basic physics of the model.

use baselines::{
    GreedyConfig, GreedyPriority, GreedyRouter, RandomPriorityRouter, StoreForwardRouter,
};
use hotpotato_routing::prelude::*;
use leveled_net::builders::{ButterflyCoords, MeshCorner};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::RoutingProblem;
use std::sync::Arc;

/// A zoo of (topology, workload) instances spanning every builder.
fn instance_zoo(seed: u64) -> Vec<Arc<RoutingProblem>> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::new();

    let bf = Arc::new(builders::butterfly(4));
    out.push(workloads::random_pairs(&bf, 20, &mut rng).unwrap());
    let coords = ButterflyCoords { k: 4 };
    out.push(workloads::butterfly_permutation(&bf, &coords, &mut rng));
    out.push(workloads::butterfly_bit_reversal(&bf, &coords));

    let (mesh_raw, mesh_coords) = builders::mesh(6, 6, MeshCorner::TopLeft);
    let mesh = Arc::new(mesh_raw);
    out.push(workloads::mesh_transpose(&mesh, &mesh_coords).unwrap());
    out.push(workloads::random_pairs(&mesh, 12, &mut rng).unwrap());

    let (mesh_br_raw, _) = builders::mesh(5, 7, MeshCorner::BottomRight);
    let mesh_br = Arc::new(mesh_br_raw);
    out.push(workloads::random_pairs(&mesh_br, 8, &mut rng).unwrap());

    let complete = Arc::new(builders::complete_leveled(8, 4));
    out.push(workloads::hotspot(&complete, 16, 2, &mut rng).unwrap());
    out.push(workloads::funnel(&complete, 10, &mut rng).unwrap());
    out.push(workloads::level_to_level(&complete, 0, 8, &mut rng).unwrap());

    let (hc_raw, _) = builders::hypercube(5);
    let hc = Arc::new(hc_raw);
    out.push(workloads::random_pairs(&hc, 10, &mut rng).unwrap());

    let random = Arc::new(builders::random_leveled(10, 2..=5, 0.4, &mut rng));
    out.push(workloads::random_pairs(&random, 10, &mut rng).unwrap());

    let tree = Arc::new(builders::binary_tree(4));
    out.push(workloads::random_pairs(&tree, 6, &mut rng).unwrap());

    let fat = Arc::new(builders::fat_tree(4, 4));
    out.push(workloads::random_pairs(&fat, 6, &mut rng).unwrap());

    let se = Arc::new(builders::shuffle_exchange_unrolled(4));
    out.push(workloads::random_pairs(&se, 12, &mut rng).unwrap());

    let line = Arc::new(builders::linear_array(12));
    out.push(workloads::level_to_level(&line, 0, 11, &mut rng).unwrap());

    let (grid_raw, _) = builders::multidim_array(&[3, 3, 3]);
    let grid = Arc::new(grid_raw);
    out.push(workloads::random_pairs(&grid, 8, &mut rng).unwrap());

    out
}

fn sanity(problem: &RoutingProblem, stats: &RouteStats, algo: &str) {
    assert!(
        stats.all_delivered(),
        "{algo} failed on {}: {}",
        problem.describe(),
        stats.summary()
    );
    let lower = problem.congestion().max(problem.dilation()) as u64;
    let mk = stats.makespan().unwrap_or(0);
    assert!(
        problem.dilation() == 0
            || mk
                >= problem
                    .packets()
                    .iter()
                    .map(|p| p.path.len())
                    .max()
                    .unwrap() as u64,
        "{algo}: makespan {mk} beats the dilation bound on {}",
        problem.describe()
    );
    let _ = lower;
    // Delivery must not precede injection.
    for (inj, del) in stats.injected_at.iter().zip(&stats.delivered_at) {
        let (inj, del) = (inj.unwrap(), del.unwrap());
        assert!(del >= inj, "{algo}: delivered before injected");
    }
}

#[test]
fn busch_delivers_on_the_whole_zoo() {
    for (i, problem) in instance_zoo(1).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(100 + i as u64);
        let out = BuschRouter::new(Params::auto(&problem)).route(&problem, &mut rng);
        sanity(&problem, &out.stats, "busch");
    }
}

#[test]
fn greedy_delivers_on_the_whole_zoo() {
    for (i, problem) in instance_zoo(2).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(200 + i as u64);
        let out = GreedyRouter::new().route(&problem, &mut rng);
        sanity(&problem, &out.stats, "greedy");
    }
}

#[test]
fn greedy_furthest_first_delivers_on_the_whole_zoo() {
    let cfg = GreedyConfig {
        priority: GreedyPriority::FurthestToGo,
        ..Default::default()
    };
    for (i, problem) in instance_zoo(3).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(300 + i as u64);
        let out = GreedyRouter::with_config(cfg).route(&problem, &mut rng);
        sanity(&problem, &out.stats, "greedy-ftg");
    }
}

#[test]
fn random_priority_delivers_on_the_whole_zoo() {
    for (i, problem) in instance_zoo(4).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(400 + i as u64);
        let out = RandomPriorityRouter::new().route(&problem, &mut rng);
        sanity(&problem, &out.stats, "random-priority");
    }
}

#[test]
fn store_forward_delivers_on_the_whole_zoo() {
    for (i, problem) in instance_zoo(5).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(500 + i as u64);
        let out = StoreForwardRouter::fifo().route(&problem, &mut rng);
        sanity(&problem, &out.stats, "store-forward");
        // Buffered routing never deflects.
        assert_eq!(out.stats.total_deflections(), 0);
        assert_eq!(out.stats.max_deviation_overall(), 0);
    }
}

#[test]
fn store_forward_random_rank_delivers_on_the_whole_zoo() {
    for (i, problem) in instance_zoo(6).into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(600 + i as u64);
        let cap = problem.congestion() as u64;
        let out = StoreForwardRouter::random_rank(cap).route(&problem, &mut rng);
        sanity(&problem, &out.stats, "store-forward-rr");
    }
}

#[test]
fn mesh_orientations_route_in_all_four_directions() {
    for (i, corner) in MeshCorner::ALL.into_iter().enumerate() {
        let mut rng = ChaCha8Rng::seed_from_u64(700 + i as u64);
        let (raw, _) = builders::mesh(5, 5, corner);
        let net = Arc::new(raw);
        let problem = workloads::random_pairs(&net, 10, &mut rng).unwrap();
        let out = BuschRouter::new(Params::auto(&problem)).route(&problem, &mut rng);
        sanity(&problem, &out.stats, "busch-mesh");
    }
}

#[test]
fn trivial_and_singleton_problems() {
    let net = Arc::new(builders::linear_array(3));
    // A problem with a single trivial packet.
    let prob = Arc::new(
        RoutingProblem::new(
            Arc::clone(&net),
            vec![routing_core::Path::trivial(leveled_net::NodeId(1))],
        )
        .unwrap(),
    );
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let out = BuschRouter::new(Params::scaled(3, 4, 0.1, 1)).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    let g = GreedyRouter::new().route(&prob, &mut rng);
    assert!(g.stats.all_delivered());
    let sf = StoreForwardRouter::fifo().route(&prob, &mut rng);
    assert!(sf.stats.all_delivered());
}

#[test]
fn empty_problem_is_a_noop() {
    let net = Arc::new(builders::linear_array(3));
    let prob = Arc::new(RoutingProblem::new(Arc::clone(&net), vec![]).unwrap());
    let mut rng = ChaCha8Rng::seed_from_u64(0);
    let out = BuschRouter::new(Params::scaled(3, 4, 0.1, 1)).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    assert_eq!(out.stats.num_packets(), 0);
    let g = GreedyRouter::new().route(&prob, &mut rng);
    assert_eq!(g.stats.steps_run, 0);
}
