//! Golden-equivalence tests: fixed seeds must produce bit-identical run
//! records across engine refactors.
//!
//! The engine's hot path is optimization territory (arena arrivals,
//! maintained occupied lists, scratch-based conflict resolution), but the
//! *semantics* — which packet crosses which edge at which step — must not
//! drift: iteration order feeds the tie-breaking RNG, so any accidental
//! reordering silently changes every downstream experiment. These tests
//! pin two full runs (one butterfly, one mesh) against committed golden
//! records.
//!
//! To regenerate after an *intentional* semantic change:
//!
//! ```text
//! HOTPOTATO_BLESS=1 cargo test --test golden_equivalence
//! ```

use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_sim::{ExitKind, RouteStats, RunRecord};
use leveled_net::builders::{self, ButterflyCoords, MeshCorner};
use leveled_net::Direction;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::workloads;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

/// Canonical, line-oriented text encoding of a run: stable across
/// platforms, readable in diffs, independent of serde details.
fn encode(stats: &RouteStats, record: &RunRecord) -> String {
    let mut out = String::new();
    writeln!(out, "# golden run record v1").unwrap();
    writeln!(
        out,
        "stats steps={} delivered={} makespan={} deflections={}",
        stats.steps_run,
        stats.delivered_count(),
        stats.makespan().unwrap_or(0),
        stats.total_deflections(),
    )
    .unwrap();
    for tv in &record.trivial {
        writeln!(out, "trivial t={} pkt={}", tv.time, tv.pkt.0).unwrap();
    }
    for ev in &record.moves {
        let dir = match ev.mv.dir {
            Direction::Forward => "F",
            Direction::Backward => "B",
        };
        let kind = match ev.kind {
            ExitKind::Advance => "adv",
            ExitKind::Deflect { safe: true } => "def-safe",
            ExitKind::Deflect { safe: false } => "def-free",
            ExitKind::Oscillate => "osc",
            ExitKind::Inject => "inj",
        };
        writeln!(
            out,
            "move t={} pkt={} edge={} dir={dir} kind={kind}",
            ev.time, ev.pkt.0, ev.mv.edge.0
        )
        .unwrap();
    }
    out
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(name)
}

/// Compares the encoded run against the committed golden file; with
/// `HOTPOTATO_BLESS=1`, rewrites the golden instead.
fn check_golden(name: &str, stats: &RouteStats, record: &RunRecord) {
    let encoded = encode(stats, record);
    let path = golden_path(name);
    if std::env::var("HOTPOTATO_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &encoded).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {name} ({e}); bless with HOTPOTATO_BLESS=1"));
    if encoded != want {
        // Locate the first diverging line for a readable failure.
        let first_diff = encoded
            .lines()
            .zip(want.lines())
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| encoded.lines().count().min(want.lines().count()));
        panic!(
            "run diverged from golden {name} at line {} \
             (got {:?}, want {:?}); if the change is intentional, \
             re-bless with HOTPOTATO_BLESS=1",
            first_diff + 1,
            encoded.lines().nth(first_diff),
            want.lines().nth(first_diff),
        );
    }
}

/// Busch router on a butterfly(4) random-pairs instance: exercises
/// injections, conflicts, safe/free deflections, and wait oscillations.
#[test]
fn busch_butterfly_matches_golden() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    let net = Arc::new(builders::butterfly(4));
    let prob = workloads::random_pairs(&net, 14, &mut rng).unwrap();
    let cfg = BuschConfig {
        record: true,
        ..BuschConfig::new(Params::scaled(4, 16, 0.15, 2))
    };
    let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered(), "golden run must deliver");
    check_golden(
        "busch_butterfly4.txt",
        &out.stats,
        out.record.as_ref().expect("recording on"),
    );
}

/// Busch router on the §5 mesh-transpose instance (C = D = n - 1):
/// deterministic workload, randomized set assignment and tie-breaks.
#[test]
fn busch_mesh_matches_golden() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xBEEF);
    let (raw, coords) = builders::mesh(6, 6, MeshCorner::TopLeft);
    let net = Arc::new(raw);
    let prob = workloads::mesh_transpose(&net, &coords).unwrap();
    let cfg = BuschConfig {
        record: true,
        ..BuschConfig::new(Params::auto(&prob))
    };
    let out = BuschRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered(), "golden run must deliver");
    check_golden(
        "busch_mesh6.txt",
        &out.stats,
        out.record.as_ref().expect("recording on"),
    );
}

/// Greedy router on a butterfly bit-reversal: covers the baseline loop's
/// rng consumption and conflict ordering too.
#[test]
fn greedy_bit_reversal_matches_golden() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xFEED);
    let net = Arc::new(builders::butterfly(5));
    let coords = ButterflyCoords { k: 5 };
    let prob = workloads::butterfly_bit_reversal(&net, &coords);
    let cfg = baselines::GreedyConfig {
        record: true,
        ..Default::default()
    };
    let out = baselines::GreedyRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered(), "golden run must deliver");
    check_golden(
        "greedy_bitrev5.txt",
        &out.stats,
        out.record.as_ref().expect("recording on"),
    );
}

/// Attaching observers must not change routing by a single bit: the same
/// seeded run with a `MetricsObserver` and a `JsonlTraceObserver` feeding
/// off every event must reproduce the committed golden exactly.
#[test]
fn observed_run_matches_unobserved_golden() {
    use hotpotato_sim::{JsonlTraceObserver, MetricsObserver};

    let mut rng = ChaCha8Rng::seed_from_u64(0xC0FFEE);
    let net = Arc::new(builders::butterfly(4));
    let prob = workloads::random_pairs(&net, 14, &mut rng).unwrap();
    let cfg = BuschConfig {
        record: true,
        ..BuschConfig::new(Params::scaled(4, 16, 0.15, 2))
    };
    let mut observer = (
        MetricsObserver::new(&prob),
        JsonlTraceObserver::new(Vec::new()),
    );
    let out = BuschRouter::with_config(cfg).route_observed(&prob, &mut rng, &mut observer);
    assert!(out.stats.all_delivered(), "golden run must deliver");
    check_golden(
        "busch_butterfly4.txt",
        &out.stats,
        out.record.as_ref().expect("recording on"),
    );

    // The sinks really observed the run they did not perturb.
    let (metrics, trace) = observer;
    let hist: u64 = metrics
        .deflection_histogram()
        .iter()
        .map(|&(d, c)| u64::from(d) * u64::from(c))
        .sum();
    assert_eq!(hist, out.stats.total_deflections(), "histogram mass");
    let jsonl = String::from_utf8(trace.finish().expect("no io errors")).unwrap();
    assert_eq!(
        jsonl
            .lines()
            .filter(|l| l.contains("\"ev\":\"deliver\""))
            .count(),
        out.stats.delivered_count(),
        "one deliver event per delivered packet"
    );
    for line in jsonl.lines() {
        serde_json::from_str(line).expect("trace lines are valid JSON");
    }
}
