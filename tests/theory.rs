//! Theory-facing integration tests: the paper's formulas and asymptotic
//! claims, checked numerically and against simulation.

use baselines::{GreedyRouter, StoreForwardRouter};
use busch_router::{BuschRouter, PaperParams, Params};
use hotpotato_routing::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

#[test]
fn theorem_2_6_success_bound_over_a_grid() {
    // p(aCm + L) >= 1 - 1/(LN) for every instance in a wide grid.
    for &c in &[1u64, 2, 8, 64, 512, 4096] {
        for &l in &[2u64, 8, 32, 128, 1024] {
            for &n in &[2u64, 16, 256, 4096, 1 << 20] {
                let p = PaperParams::new(c, l, n);
                // The analytic margin over the bound is Θ(1/(LN)²), which
                // can fall below f64 `powf` error; allow an fp epsilon.
                assert!(
                    p.success_probability() >= p.success_lower_bound() - 4.0 * f64::EPSILON,
                    "C={c} L={l} N={n}: {} < {}",
                    p.success_probability(),
                    p.success_lower_bound()
                );
            }
        }
    }
}

#[test]
fn paper_time_grows_linearly_in_c_plus_l() {
    // Theorem 2.6: at fixed N (hence nearly fixed polylog), doubling C
    // roughly doubles the bound once C dominates.
    let n = 1 << 16;
    let l = 64;
    let t1 = PaperParams::new(1 << 10, l, n).total_time();
    let t2 = PaperParams::new(1 << 11, l, n).total_time();
    let ratio = t2 / t1;
    assert!(
        (1.8..2.4).contains(&ratio),
        "doubling C should ~double the time; ratio {ratio}"
    );
}

#[test]
fn scheduled_steps_scale_linearly_in_c_and_l() {
    // The simulation schedule inherits the paper's (aCm + L)·m·w shape:
    // linear in the number of sets (≈ C) and in L, for fixed m, w.
    let p = Params::scaled(6, 48, 0.1, 10);
    let base = p.scheduled_steps(50);
    let double_sets = Params::scaled(6, 48, 0.1, 20).scheduled_steps(50);
    let double_l = p.scheduled_steps(110);
    assert_eq!(double_sets - base, 10 * 6 * p.phase_len());
    assert_eq!(double_l - base, 60 * p.phase_len());
}

#[test]
fn lemma_2_2_per_set_congestion_is_logarithmic() {
    // Splitting into ~C/ln(LN) sets leaves per-set congestion O(ln(LN)).
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let net = Arc::new(builders::complete_leveled(20, 8));
    let prob = workloads::funnel(&net, 64, &mut rng).unwrap();
    let c = prob.congestion() as f64;
    let l = net.depth() as f64;
    let n = prob.num_packets() as f64;
    let ln_ln = (l * n).ln();
    let num_sets = ((c / ln_ln).ceil() as u32).max(1);
    for seed in 0..10u64 {
        let mut srng = ChaCha8Rng::seed_from_u64(seed);
        let assignment =
            busch_router::schedule::assign_sets(prob.num_packets(), num_sets, &mut srng);
        let per = prob.per_set_congestion(&assignment, num_sets as usize);
        let max = *per.iter().max().unwrap() as f64;
        // Lemma 2.2 bound is ln(LN); allow the constant-factor slack a
        // finite-size Chernoff tail needs.
        assert!(
            max <= 3.0 * ln_ln,
            "seed {seed}: per-set congestion {max} vs ln(LN) = {ln_ln:.1}"
        );
    }
}

#[test]
fn busch_makespan_tracks_the_schedule() {
    // The routing time is governed by the frame pipeline: it never exceeds
    // the scheduled steps plus grace, and with congestion-matched sets it
    // uses most of the schedule (frames must sweep the whole network).
    let mut rng = ChaCha8Rng::seed_from_u64(3);
    let net = Arc::new(builders::butterfly(5));
    let prob = workloads::random_pairs(&net, 32, &mut rng).unwrap();
    let params = Params::auto(&prob);
    let out = BuschRouter::new(params).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    let mk = out.stats.makespan().unwrap();
    let scheduled = params.scheduled_steps(net.depth());
    assert!(mk <= params.max_steps(net.depth()));
    assert!(
        mk >= scheduled / 4,
        "makespan {mk} suspiciously below the pipeline length {scheduled}"
    );
}

#[test]
fn buffers_buy_at_most_the_schedule_factor() {
    // §1.2: "the benefit from using buffers is no more than
    // polylogarithmic". Empirically: Busch's bufferless makespan divided
    // by the buffered store-and-forward makespan is bounded by the
    // schedule's polylog inflation, here checked against an explicit
    // m²·w-style budget.
    let mut rng = ChaCha8Rng::seed_from_u64(4);
    let net = Arc::new(builders::butterfly(5));
    let prob = workloads::random_pairs(&net, 32, &mut rng).unwrap();
    let params = Params::auto(&prob);
    let busch = BuschRouter::new(params).route(&prob, &mut rng);
    let sf = StoreForwardRouter::fifo().route(&prob, &mut rng);
    assert!(busch.stats.all_delivered() && sf.stats.all_delivered());
    let ratio = busch.stats.makespan().unwrap() as f64 / sf.stats.makespan().unwrap() as f64;
    // The schedule inflates by ~(sets·m + L)/(C + L) · m · w ≈ m²·w·const.
    let budget = (params.m as f64).powi(2) * params.w as f64;
    assert!(
        ratio <= budget,
        "bufferless/buffered ratio {ratio:.1} above the polylog budget {budget:.1}"
    );
}

#[test]
fn greedy_beats_schedule_on_easy_instances_but_is_unbounded_in_theory() {
    // Sanity for the comparison experiment: on low-congestion inputs the
    // greedy baseline is near-optimal, far below Busch's pipeline time —
    // the paper's value is the *guarantee*, not raw speed at toy scale.
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let net = Arc::new(builders::butterfly(5));
    let prob = workloads::random_pairs(&net, 16, &mut rng).unwrap();
    let g = GreedyRouter::new().route(&prob, &mut rng);
    let b = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
    assert!(g.stats.all_delivered() && b.stats.all_delivered());
    assert!(g.stats.makespan().unwrap() < b.stats.makespan().unwrap());
    // But greedy's *latency* (time in flight) is not smaller than Busch's
    // frame-riding latency by more than the deflection overhead; both stay
    // within a small multiple of D here.
    let d = prob.dilation() as f64;
    assert!(g.stats.mean_latency() <= 4.0 * d);
}

#[test]
fn mesh_section_5_shape() {
    // §5: on the n×n mesh with C = D = Θ(n) paths, the bufferless makespan
    // divided by n must grow at most polylogarithmically: check the Õ
    // factor grows far slower than n itself.
    let mut factors = Vec::new();
    for n in [4usize, 8, 16] {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let (raw, coords) = builders::mesh(n, n, leveled_net::builders::MeshCorner::TopLeft);
        let net = Arc::new(raw);
        let prob = workloads::mesh_transpose(&net, &coords).unwrap();
        let out = BuschRouter::new(Params::auto(&prob)).route(&prob, &mut rng);
        assert!(out.stats.all_delivered());
        let lower = prob.congestion().max(prob.dilation()) as f64;
        factors.push(out.stats.makespan().unwrap() as f64 / lower);
    }
    // Quadrupling n must not quadruple the Õ factor (it grows ~polylog).
    let growth = factors[2] / factors[0];
    assert!(
        growth < 16.0,
        "Õ factor grew superpolylogarithmically: {factors:?}"
    );
}
