//! Golden equivalence of the data-oriented engine against the scalar
//! oracle, and determinism of the intra-run banded mode.
//!
//! The scalar engine ([`hotpotato_sim::Simulation`]) remains the
//! reference implementation; the SoA engine must reproduce it **bit for
//! bit** in sequential mode — identical `RouteStats` (every array, every
//! counter), identical movement records, and byte-identical JSONL trace
//! streams — on instances that exercise injections, conflicts, both
//! deflection kinds, and wait oscillation. The banded mode
//! ([`BuschConfig::parallel_bands`]) is *not* stream-compatible with the
//! scalar rng discipline, but must be a pure function of (problem,
//! seed): sweeping `HOTPOTATO_THREADS` across {1, 2, 8} — which toggles
//! between in-thread band execution and the worker pool — must not move
//! a single event.

use busch_router::{BuschConfig, BuschOutcome, BuschRouter, EngineKind, Params};
use hotpotato_sim::{JsonlTraceObserver, RouteStats};
use hotpotato_trace::schema::{self, Trace};
use hotpotato_trace::verify::verify_trace;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::spec;
use routing_core::RoutingProblem;
use std::sync::Arc;

/// Runs the busch router on `problem` with the given engine, capturing
/// the JSONL event stream.
fn run(
    problem: &Arc<RoutingProblem>,
    params: Params,
    engine: EngineKind,
    parallel_bands: bool,
    seed: u64,
) -> (BuschOutcome, Vec<u8>) {
    let cfg = BuschConfig {
        engine,
        parallel_bands,
        record: true,
        trace: true,
        ..BuschConfig::new(params)
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut trace = JsonlTraceObserver::new(Vec::new());
    let out = BuschRouter::with_config(cfg).route_observed(problem, &mut rng, &mut trace);
    (out, trace.finish().expect("no io errors"))
}

/// Asserts every field of two `RouteStats` equal, naming the first
/// divergent one.
fn assert_stats_identical(a: &RouteStats, b: &RouteStats) {
    assert_eq!(a.injected_at, b.injected_at, "injected_at");
    assert_eq!(a.delivered_at, b.delivered_at, "delivered_at");
    assert_eq!(a.deflections, b.deflections, "deflections");
    assert_eq!(a.max_deviation, b.max_deviation, "max_deviation");
    assert_eq!(a.steps_run, b.steps_run, "steps_run");
    assert_eq!(a.counters, b.counters, "counters");
    assert_eq!(a.active_trace, b.active_trace, "active_trace");
}

fn assert_outcomes_identical(a: &BuschOutcome, b: &BuschOutcome) {
    assert_stats_identical(&a.stats, &b.stats);
    assert_eq!(a.invariants, b.invariants, "invariant reports");
    assert_eq!(a.set_assignment, b.set_assignment, "set assignment");
    assert_eq!(a.phases_elapsed, b.phases_elapsed, "phases elapsed");
    let (ra, rb) = (
        a.record.as_ref().expect("recording on"),
        b.record.as_ref().expect("recording on"),
    );
    assert_eq!(ra.moves, rb.moves, "movement records");
    assert_eq!(ra.trivial, rb.trivial, "trivial deliveries");
}

/// Scalar and SoA engines on butterfly(10) bit-reversal — ~1k packets,
/// heavy conflicts — must agree on everything, to the byte.
#[test]
fn soa_matches_scalar_on_butterfly_bitrev() {
    let (_, problem) = spec::reconstruct_problem("butterfly:10", "bitrev", 42).unwrap();
    let params = Params::auto(&problem);
    let (scalar, scalar_trace) = run(&problem, params, EngineKind::Scalar, false, 7);
    let (soa, soa_trace) = run(&problem, params, EngineKind::Soa, false, 7);
    assert!(scalar.stats.all_delivered(), "oracle run must deliver");
    assert_outcomes_identical(&scalar, &soa);
    assert_eq!(
        scalar_trace, soa_trace,
        "JSONL trace streams must be byte-identical"
    );
}

/// Same contract on the §5 mesh application: 8×8 transpose.
#[test]
fn soa_matches_scalar_on_mesh_transpose() {
    let (_, problem) = spec::reconstruct_problem("mesh:8x8", "transpose", 0).unwrap();
    let params = Params::auto(&problem);
    let (scalar, scalar_trace) = run(&problem, params, EngineKind::Scalar, false, 11);
    let (soa, soa_trace) = run(&problem, params, EngineKind::Soa, false, 11);
    assert!(scalar.stats.all_delivered(), "oracle run must deliver");
    assert_outcomes_identical(&scalar, &soa);
    assert_eq!(scalar_trace, soa_trace, "JSONL trace streams");
}

/// The SoA engine's trace stream passes the offline verifier: wrap the
/// events in the meta/stats envelope the CLI writes and re-run the
/// whole stream against the model from scratch.
#[test]
fn soa_trace_verifies_offline() {
    let (topo, problem) = spec::reconstruct_problem("butterfly:10", "bitrev", 42).unwrap();
    let params = Params::auto(&problem);
    let (out, events) = run(&problem, params, EngineKind::Soa, false, 7);
    let meta = schema::Meta {
        schema: schema::SCHEMA_VERSION,
        topo: "butterfly:10".into(),
        workload: "bitrev".into(),
        algo: "busch".into(),
        seed: 42,
        arrival: String::new(),
        packets: problem.num_packets() as u64,
        levels: topo.net.num_levels() as u64,
        congestion: u64::from(problem.congestion()),
        dilation: u64::from(problem.dilation()),
    };
    let mut text = schema::meta_line(&meta);
    text.push('\n');
    text.push_str(std::str::from_utf8(&events).unwrap());
    text.push_str(&schema::stats_line(&out.stats));
    text.push('\n');
    let trace = Trace::parse(&text).expect("trace parses");
    let report = verify_trace(&trace).expect("SoA trace verifies clean");
    assert_eq!(report.delivered, problem.num_packets());
    assert!(report.replay_cross_checked);
}

/// Banded (intra-run sharded) runs are a pure function of (problem,
/// seed): sweeping the worker budget across {1, 2, 8} — in-thread band
/// execution at 1, pool execution above — reproduces byte-identical
/// outcomes. Env manipulation stays inside this one test: integration
/// tests in this binary run concurrently, and `HOTPOTATO_THREADS` is
/// read per run.
#[test]
fn banded_runs_identical_across_thread_counts() {
    let (_, problem) = spec::reconstruct_problem("butterfly:9", "bitrev", 5).unwrap();
    let params = Params::auto(&problem);
    let mut outcomes: Vec<(BuschOutcome, Vec<u8>)> = Vec::new();
    for threads in ["1", "2", "8"] {
        std::env::set_var("HOTPOTATO_THREADS", threads);
        outcomes.push(run(&problem, params, EngineKind::Soa, true, 99));
    }
    std::env::remove_var("HOTPOTATO_THREADS");
    let (first, first_trace) = &outcomes[0];
    assert!(first.stats.all_delivered(), "banded run must deliver");
    for (other, other_trace) in &outcomes[1..] {
        assert_outcomes_identical(first, other);
        assert_eq!(first_trace, other_trace, "banded JSONL trace streams");
    }
}

/// Banded mode must still deliver everything with clean audit machinery
/// on a conflict-free instance (sanity that sharding does not perturb
/// the invariant counters themselves).
#[test]
fn banded_mode_keeps_invariants_clean_on_line() {
    let (_, problem) = spec::reconstruct_problem("linear:12", "level:0:11", 3).unwrap();
    let params = Params::scaled(4, 12, 0.05, 1);
    let (out, _) = run(&problem, params, EngineKind::Soa, true, 13);
    assert!(out.stats.all_delivered());
    assert!(out.invariants.is_clean(), "{}", out.invariants.summary());
}
