//! Failure-injection and chaos testing.
//!
//! * A *chaos policy* drives the engine with adversarial-but-legal
//!   decisions (uniformly random free exits, random injection timing);
//!   the replay auditor must still certify the run and the engine must
//!   never corrupt its accounting.
//! * A *mutation fuzzer* corrupts valid run records in seeded-random ways;
//!   the replay auditor must flag every corruption that changes semantics.

use hotpotato_routing::prelude::*;
use hotpotato_sim::replay::{self, ReplayError};
use hotpotato_sim::{ExitKind, InjectOutcome, Simulation};
use leveled_net::ids::DirectedEdge;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// Drives the engine with uniformly random legal exits until `max_steps`
/// or delivery; returns the engine's outcome parts.
fn chaos_run(
    problem: &Arc<routing_core::RoutingProblem>,
    seed: u64,
    max_steps: u64,
) -> (hotpotato_sim::RouteStats, hotpotato_sim::RunRecord) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = problem.num_packets();
    let mut sim = Simulation::builder(Arc::clone(problem), vec![(); n])
        .recording(true)
        .build();
    let mut pending: Vec<u32> = (0..n as u32).collect();

    while !sim.is_done() && sim.now() < max_steps {
        for v in sim.occupied_nodes() {
            let arrivals = sim.arrivals(v).to_vec();
            // Assign each arriving packet a random free exit: legal but
            // completely structure-free routing.
            let mut exits: Vec<DirectedEdge> = sim
                .network()
                .exits(v)
                .filter(|&mv| sim.slot_free(mv))
                .collect();
            exits.shuffle(&mut rng);
            for (pkt, mv) in arrivals.into_iter().zip(exits) {
                let kind = if Some(mv) == sim.next_move_of(pkt) {
                    ExitKind::Advance
                } else {
                    ExitKind::Deflect { safe: false }
                };
                sim.stage_exit(pkt, mv, kind).expect("free slot");
            }
        }
        // Random-subset injection this step.
        pending.retain(|&p| {
            if rng.gen_bool(0.3) {
                !matches!(
                    sim.try_inject(p).expect("pending"),
                    InjectOutcome::Injected | InjectOutcome::DeliveredTrivially
                )
            } else {
                true
            }
        });
        sim.finish_step().expect("all arrivals staged");
    }
    let (stats, record) = sim.into_parts();
    (stats, record.expect("recording enabled"))
}

#[test]
fn chaos_routing_never_breaks_physics() {
    for seed in 0..6u64 {
        let mut wrng = ChaCha8Rng::seed_from_u64(seed);
        let net = Arc::new(builders::butterfly(4));
        let prob = workloads::random_pairs(&net, 12, &mut wrng).unwrap();
        let (stats, record) = chaos_run(&prob, 100 + seed, 4000);
        // Whatever happened, the record must replay cleanly.
        let report =
            replay::verify(&prob, &record, &stats).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(report.delivered, stats.delivered_count());
        // Conservation: every delivered packet was injected first.
        for (i, d) in stats.delivered_at.iter().enumerate() {
            if d.is_some() {
                assert!(stats.injected_at[i].is_some(), "seed {seed} pkt {i}");
            }
        }
    }
}

#[test]
fn chaos_on_a_line_delivers_by_luck() {
    // On a linear array a random walk is recurrent: the lone packet must
    // eventually stumble into its destination.
    let mut wrng = ChaCha8Rng::seed_from_u64(9);
    let net = Arc::new(builders::linear_array(6));
    let prob = workloads::level_to_level(&net, 0, 5, &mut wrng).unwrap();
    let (stats, record) = chaos_run(&prob, 7, 200_000);
    assert!(stats.all_delivered(), "random walk on a line is recurrent");
    replay::verify(&prob, &record, &stats).expect("clean replay");
}

#[test]
fn chaos_with_heavy_load_saturates_but_stays_legal() {
    // As many packets as the network can hold at once.
    let mut wrng = ChaCha8Rng::seed_from_u64(11);
    let net = Arc::new(builders::complete_leveled(6, 4));
    let prob = workloads::many_to_many(&net, 48, &mut wrng).unwrap();
    let (stats, record) = chaos_run(&prob, 13, 3000);
    replay::verify(&prob, &record, &stats).expect("clean replay under load");
}

// ---------------------------------------------------------------------
// Mutation fuzzing of the replay auditor.
// ---------------------------------------------------------------------

fn valid_run() -> (
    Arc<routing_core::RoutingProblem>,
    hotpotato_sim::RouteStats,
    hotpotato_sim::RunRecord,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(42);
    let net = Arc::new(builders::butterfly(4));
    let prob = workloads::random_pairs(&net, 10, &mut rng).unwrap();
    let cfg = baselines::GreedyConfig {
        record: true,
        ..Default::default()
    };
    let out = baselines::GreedyRouter::with_config(cfg).route(&prob, &mut rng);
    assert!(out.stats.all_delivered());
    (prob, out.stats, out.record.unwrap())
}

/// Deleting any single move from a valid record must be detected
/// (the packet either rests, teleports, or ends undelivered).
#[test]
fn deleting_any_move_is_detected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB1);
    for case in 0..48 {
        let (prob, stats, mut record) = valid_run();
        let idx = rng.gen_range(0..record.moves.len());
        record.moves.remove(idx);
        assert!(
            replay::verify(&prob, &record, &stats).is_err(),
            "case {case}: deleted move {idx} went unnoticed"
        );
    }
}

/// Duplicating a move must be detected (double-move or slot clash).
#[test]
fn duplicating_any_move_is_detected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB2);
    for case in 0..48 {
        let (prob, stats, mut record) = valid_run();
        let idx = rng.gen_range(0..record.moves.len());
        let ev = record.moves[idx];
        record.moves.insert(idx, ev);
        assert!(
            replay::verify(&prob, &record, &stats).is_err(),
            "case {case}: duplicated move {idx} went unnoticed"
        );
    }
}

/// Retiming a move to a different step must be detected — except for
/// the one genuinely legal case: delaying an injection that is a
/// packet's *only* move (injection timing is free in the model).
#[test]
fn retiming_a_move_is_detected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB3);
    for case in 0..48 {
        let (prob, stats, mut record) = valid_run();
        let idx = rng.gen_range(0..record.moves.len());
        let delta = rng.gen_range(1u64..5);
        let ev = record.moves[idx];
        let pkt_moves = record.moves.iter().filter(|e| e.pkt == ev.pkt).count();
        if ev.kind == hotpotato_sim::ExitKind::Inject && pkt_moves == 1 {
            continue; // delaying a lone injection is legal
        }
        record.moves[idx].time += delta;
        // Keep the vector time-sorted so we test semantics, not ordering.
        record.moves.sort_by_key(|e| e.time);
        assert!(
            replay::verify(&prob, &record, &stats).is_err(),
            "case {case}: retimed move {idx} (+{delta}) went unnoticed"
        );
    }
}

/// Redirecting a move onto a random other edge must be detected
/// unless the substitute happens to be an identical parallel edge
/// (butterflies have none, so always detected here).
#[test]
fn redirecting_a_move_is_detected() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB4);
    for case in 0..48 {
        let (prob, stats, mut record) = valid_run();
        let idx = rng.gen_range(0..record.moves.len());
        let ne = prob.network().num_edges() as u32;
        let new_edge = leveled_net::EdgeId(rng.gen_range(0..ne));
        if record.moves[idx].mv.edge == new_edge {
            continue; // no-op mutation
        }
        record.moves[idx].mv.edge = new_edge;
        assert!(
            replay::verify(&prob, &record, &stats).is_err(),
            "case {case}: redirected move {idx} went unnoticed"
        );
    }
}

#[test]
fn flipping_stats_delivery_is_detected() {
    let (prob, mut stats, record) = valid_run();
    stats.delivered_at[3] = None;
    let err = replay::verify(&prob, &record, &stats).unwrap_err();
    assert!(matches!(err, ReplayError::DeliveryMismatch { .. }));
}
