//! The paper's §5 application: routing on the n×n mesh viewed as a leveled
//! network (leveled by diagonals from a corner), with a workload whose
//! congestion and dilation are both Θ(n) — the regime where the
//! O((C + L)·polylog) bound is `Õ(n)`.
//!
//! Sweeps the mesh size and prints makespan against the `max(C, D)` lower
//! bound for the paper's router and the baselines.
//!
//! ```text
//! cargo run --release --example mesh_diagonal [max_n] [seed]
//! ```

use baselines::{GreedyRouter, StoreForwardRouter};
use hotpotato_routing::prelude::*;
use leveled_net::builders::MeshCorner;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let max_n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);

    println!(
        "{:>4} {:>4} {:>4} {:>4} {:>7} {:>10} {:>10} {:>12} {:>8}",
        "n", "C", "D", "L", "lower", "busch", "greedy", "store-fwd", "busch/lb"
    );
    let mut n = 4;
    while n <= max_n {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let (raw, coords) = builders::mesh(n, n, MeshCorner::TopLeft);
        let net = Arc::new(raw);
        let problem = workloads::mesh_transpose(&net, &coords).expect("square mesh");
        let c = problem.congestion();
        let d = problem.dilation();
        let lower = c.max(d) as u64;

        let busch = BuschRouter::new(Params::auto(&problem)).route(&problem, &mut rng);
        let greedy = GreedyRouter::new().route(&problem, &mut rng);
        let sf = StoreForwardRouter::fifo().route(&problem, &mut rng);

        assert!(busch.stats.all_delivered());
        let bm = busch.stats.makespan().unwrap();
        println!(
            "{:>4} {:>4} {:>4} {:>4} {:>7} {:>10} {:>10} {:>12} {:>8.1}",
            n,
            c,
            d,
            net.depth(),
            lower,
            bm,
            greedy.stats.makespan().unwrap(),
            sf.stats.makespan().unwrap(),
            bm as f64 / lower as f64,
        );
        n *= 2;
    }
    println!(
        "\nThe busch/lb column is the empirical Õ(·) factor of Theorem 2.6: it\n\
         should stay bounded by a polylog in n as the mesh grows."
    );
}
