//! Permutation routing on butterflies: every level-0 node sends to a
//! distinct level-k node along its unique bit-fixing path — the classic
//! multiprocessor workload the paper's introduction motivates.
//!
//! Routes a random permutation and the adversarial bit-reversal
//! permutation (congestion Θ(√N)) with all four algorithms and prints a
//! comparison table.
//!
//! ```text
//! cargo run --release --example butterfly_permutation [k] [seed]
//! ```

use baselines::{GreedyRouter, RandomPriorityRouter, StoreForwardRouter};
use hotpotato_routing::prelude::*;
use leveled_net::builders::ButterflyCoords;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let k: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    let seed: u64 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(7);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    println!(
        "butterfly({k}): {} nodes, {} rows, L = {}",
        net.num_nodes(),
        coords.rows(),
        net.depth()
    );

    let cases = [
        (
            "random permutation",
            workloads::butterfly_permutation(&net, &coords, &mut rng),
        ),
        (
            "bit-reversal (adversarial)",
            workloads::butterfly_bit_reversal(&net, &coords),
        ),
    ];

    for (name, problem) in cases {
        let c = problem.congestion();
        let d = problem.dilation();
        println!("\n== {name}: N={} C={c} D={d} ==", problem.num_packets());
        println!(
            "{:<28} {:>9} {:>12} {:>12} {:>10}",
            "algorithm", "makespan", "deflections", "max-deviate", "delivered"
        );

        let busch = BuschRouter::new(Params::auto(&problem)).route(&problem, &mut rng);
        print_row("busch (paper)", &busch.stats);

        let greedy = GreedyRouter::new().route(&problem, &mut rng);
        print_row("greedy hot-potato", &greedy.stats);

        let ranked = RandomPriorityRouter::new().route(&problem, &mut rng);
        print_row("random-priority greedy", &ranked.stats);

        let sf = StoreForwardRouter::random_rank(c as u64).route(&problem, &mut rng);
        print_row("store-and-forward (buffered)", &sf.stats);

        println!("{:<28} {:>9}", "lower bound max(C, D)", c.max(d));
    }
}

fn print_row(name: &str, stats: &RouteStats) {
    println!(
        "{:<28} {:>9} {:>12} {:>12} {:>7}/{}",
        name,
        stats
            .makespan()
            .map_or_else(|| "-".into(), |m| m.to_string()),
        stats.total_deflections(),
        stats.max_deviation_overall(),
        stats.delivered_count(),
        stats.num_packets(),
    );
}
