//! Time-space diagram of a routing run: reconstructs every packet's level
//! per step from the movement record and renders the occupancy as an
//! ASCII heat map (rows = time, columns = levels). Busch's frontier-frame
//! pipeline appears as clean diagonal stripes sweeping toward level `L`;
//! greedy routing, by contrast, is a short burst.
//!
//! ```text
//! cargo run --release --example time_space [seed]
//! ```

use baselines::{GreedyConfig, GreedyRouter};
use busch_router::{BuschConfig, BuschRouter, Params};
use hotpotato_routing::prelude::*;
use hotpotato_sim::RunRecord;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // A deep synthetic network with a hot-spot workload: packets spend
    // many phases riding their frames, which makes the diagram vivid.
    let net = Arc::new(builders::complete_leveled(14, 8));
    let problem = workloads::hotspot(&net, 48, 3, &mut rng).expect("fits");
    println!("problem: {}\n", problem.describe());

    let params = Params::scaled(5, 15, 0.1, 3);
    let cfg = BuschConfig {
        record: true,
        ..BuschConfig::new(params)
    };
    let out = BuschRouter::with_config(cfg).route(&problem, &mut rng);
    assert!(out.stats.all_delivered());
    println!(
        "== busch (m={} w={} sets={}): {} steps ==",
        params.m,
        params.w,
        params.num_sets,
        out.stats.makespan().unwrap()
    );
    render(
        &problem,
        out.record.as_ref().unwrap(),
        out.stats.makespan().unwrap(),
        60,
    );

    let gcfg = GreedyConfig {
        record: true,
        ..Default::default()
    };
    let gout = GreedyRouter::with_config(gcfg).route(&problem, &mut rng);
    println!("\n== greedy: {} steps ==", gout.stats.makespan().unwrap());
    render(
        &problem,
        gout.record.as_ref().unwrap(),
        gout.stats.makespan().unwrap(),
        60,
    );

    println!(
        "\nEach row is a (sampled) step; each column a level. Digits count\n\
         in-flight packets at that level (x = 10+). Busch's packets ride the\n\
         frontier-frame diagonals; greedy rushes everything at once."
    );
}

/// Renders occupancy-by-level over time, sampling at most `max_rows` rows.
fn render(problem: &routing_core::RoutingProblem, record: &RunRecord, span: u64, max_rows: u64) {
    let rows = hotpotato_sim::record::level_occupancy(problem, record);
    let levels = problem.network().num_levels();
    let stride = (span / max_rows).max(1);

    print!("{:>7} ", "step");
    for l in 0..levels {
        print!("{}", l % 10);
    }
    println!("  in-flight");

    for (t, hist) in rows.iter().enumerate() {
        if !(t as u64).is_multiple_of(stride) {
            continue;
        }
        print!("{:>7} ", t + 1);
        for &h in hist {
            let c = match h {
                0 => '.',
                1..=9 => char::from_digit(h, 10).unwrap(),
                _ => 'x',
            };
            print!("{c}");
        }
        println!("  {}", hist.iter().sum::<u32>());
    }
}
