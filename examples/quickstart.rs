//! Quickstart: route a random workload on a butterfly with the paper's
//! algorithm.
//!
//! ```text
//! cargo run --release --example quickstart [seed]
//! ```

use hotpotato_routing::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // 1. A leveled network: the 6-dimensional butterfly (Figure 1).
    let net = Arc::new(builders::butterfly(6));
    println!(
        "network: {} ({} nodes, {} edges, depth L = {})",
        net.name(),
        net.num_nodes(),
        net.num_edges(),
        net.depth()
    );

    // 2. A routing problem: 128 random source/destination pairs with
    //    uniformly random preselected paths.
    let problem = workloads::random_pairs(&net, 128, &mut rng).expect("workload fits");
    println!("problem: {}", problem.describe());
    println!(
        "lower bound max(C, D) = {}",
        problem.congestion().max(problem.dilation())
    );

    // 3. Route it with Busch's algorithm under auto-scaled parameters.
    let params = Params::auto(&problem);
    println!(
        "params: m={} w={} q={:.3} frontier sets={}",
        params.m, params.w, params.q, params.num_sets
    );
    let outcome = BuschRouter::new(params).route(&problem, &mut rng);

    // 4. Inspect the outcome.
    println!("result: {}", outcome.stats.summary());
    println!("invariants: {}", outcome.invariants.summary());
    println!(
        "phases: {} of {} scheduled",
        outcome.phases_elapsed,
        params.scheduled_phases(net.depth())
    );
    assert!(
        outcome.stats.all_delivered(),
        "routing must deliver everything"
    );

    // 5. Compare against the buffered store-and-forward baseline.
    let sf = StoreForwardRouter::fifo().route(&problem, &mut rng);
    println!(
        "store-and-forward (buffered) makespan: {} steps, max queue {}",
        sf.stats.makespan().unwrap(),
        sf.max_queue
    );
    println!(
        "bufferless / buffered makespan ratio: {:.2}x",
        outcome.stats.makespan().unwrap() as f64 / sf.stats.makespan().unwrap() as f64
    );
}
