//! Reproduce Figure 2: the frontier-frame pipeline.
//!
//! Draws, for a leveled network of depth `L` and frames of `m` inner
//! levels, how the pipelined frontier-frames sweep across the levels phase
//! by phase — frame `i`'s frontier is at level `phase − i·m`, frames never
//! overlap, and all shift one level forward per phase. Also shows the
//! receding target level within a phase.
//!
//! ```text
//! cargo run --release --example frame_pipeline [L] [m] [sets]
//! ```

use busch_router::FrameSchedule;

fn main() {
    let l: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(11);
    let m: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(3);
    let sets: u32 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);

    let s = FrameSchedule::new(m, sets, l);
    println!("Figure 2 reproduction: L = {l}, m = {m}, {sets} frontier-frames");
    println!("(columns are levels 0..={l}; digit d marks a level inside frame F_d)\n");

    print!("{:>8} ", "phase");
    for level in 0..=l {
        print!("{:>2}", level % 10);
    }
    println!("  frontiers");
    for phase in 0..s.end_phase() {
        print!("{phase:>8} ");
        for level in 0..=l {
            let owner = (0..sets).find(|&i| s.contains(i, phase, level));
            match owner {
                Some(i) => print!("{:>2}", i % 10),
                None => print!(" ."),
            }
        }
        let fronts: Vec<String> = (0..sets)
            .map(|i| format!("φ{}={}", i, s.frontier(i, phase)))
            .collect();
        println!("  {}", fronts.join(" "));
    }

    println!(
        "\nTarget level within one phase (frame 0, phase {}):",
        m as u64 + 2
    );
    let phase = m as u64 + 2;
    for round in 0..m {
        println!(
            "  round {round}: target at inner level {} (network level {})",
            s.target_inner_level(round),
            s.target_level(0, phase, round)
        );
    }
    println!(
        "\nInjection phases for frame 0 (source level -> phase): {}",
        (0..=l.min(6))
            .map(|src| format!("{src}->{}", s.injection_phase(0, src)))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
