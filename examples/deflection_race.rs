//! Deflection anatomy: route a hot-spot workload and dissect what the
//! bufferless network actually did — deflections per packet, deviation
//! depths (how far packets strayed from their preselected paths), wait
//! oscillations, and the paper's invariant report.
//!
//! ```text
//! cargo run --release --example deflection_race [seed]
//! ```

use baselines::GreedyRouter;
use hotpotato_routing::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(17);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // Many-to-one pressure: 48 packets aimed at 3 destinations on a wide
    // synthetic leveled network.
    let net = Arc::new(builders::complete_leveled(14, 8));
    let problem = workloads::hotspot(&net, 48, 3, &mut rng).expect("workload fits");
    println!("problem: {}", problem.describe());

    println!("\n--- Busch (paper) ---");
    let params = Params::auto(&problem);
    let outcome = BuschRouter::new(params).route(&problem, &mut rng);
    dissect(&outcome.stats);
    println!("invariants: {}", outcome.invariants.summary());
    println!(
        "excitations: {}, injection retries: {}",
        outcome.stats.counter("excitations"),
        outcome.stats.counter("injection_retries")
    );

    println!("\n--- Greedy hot-potato ---");
    let greedy = GreedyRouter::new().route(&problem, &mut rng);
    dissect(&greedy.stats);

    println!(
        "\nBusch trades earlier injection for *controlled* deflections: packets\n\
         only ever ride inside their frontier-frame, so deviation depths stay\n\
         small even under hot-spot pressure, which is exactly the paper's\n\
         \"packets stay close to their preselected paths\" claim (§1.2)."
    );
}

fn dissect(stats: &RouteStats) {
    println!("{}", stats.summary());
    let mut deflections: Vec<u32> = stats.deflections.clone();
    deflections.sort_unstable();
    let p = |q: f64| deflections[(q * (deflections.len() - 1) as f64) as usize];
    println!(
        "deflections per packet: p50={} p90={} max={}",
        p(0.5),
        p(0.9),
        p(1.0)
    );
    let mut dev: Vec<u32> = stats.max_deviation.clone();
    dev.sort_unstable();
    let pd = |q: f64| dev[(q * (dev.len() - 1) as f64) as usize];
    println!(
        "deviation depth per packet: p50={} p90={} max={}",
        pd(0.5),
        pd(0.9),
        pd(1.0)
    );
    println!(
        "unsafe (fallback) deflections: {}",
        stats.counter("fallback_deflections")
    );
}
