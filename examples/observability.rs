//! Observability: attach event sinks to a run without changing it.
//!
//! Routes one butterfly bit-reversal instance three ways to show the
//! [`RouteObserver`] surface:
//!
//! 1. unobserved (the zero-cost default),
//! 2. with a [`MetricsObserver`] + [`SectionProfiler`] tuple, and
//! 3. through the object-safe [`Router`] trait with a JSONL trace.
//!
//! All three draw the same random sequence, so the routing itself is
//! byte-identical — observers only *watch*.
//!
//! ```text
//! cargo run --release --example observability [k]
//! ```

use hotpotato_routing::prelude::*;
use leveled_net::builders::ButterflyCoords;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let k: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    // The paper's reference instance: bit-reversal on the bf(k) butterfly.
    let net = Arc::new(builders::butterfly(k));
    let coords = ButterflyCoords { k };
    let problem = workloads::butterfly_bit_reversal(&net, &coords);
    let params = Params::auto(&problem);
    println!("instance: {}", problem.describe());

    // 1. The unobserved run. `route` is `route_observed` with a
    //    `NoopObserver`, whose inlined empty hooks compile away.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let plain = BuschRouter::new(params).route(&problem, &mut rng);
    println!("unobserved: {}", plain.stats.summary());

    // 2. The same run with metrics + section timing attached. Observers
    //    compose as tuples; each event fans out to both sinks.
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut observer = (
        MetricsObserver::new(&problem).with_occupancy_sampling(64),
        SectionProfiler::new(),
    );
    let observed = BuschRouter::new(params).route_observed(&problem, &mut rng, &mut observer);
    let (metrics, profile) = observer;
    assert_eq!(
        plain.stats.makespan(),
        observed.stats.makespan(),
        "observers must not perturb the run"
    );

    println!(
        "deflections: {} safe, {} unsafe",
        metrics.safe_deflections(),
        metrics.unsafe_deflections()
    );
    println!("deflection histogram (per-packet count, packets):");
    for (d, c) in metrics.deflection_histogram() {
        println!("  {d:>3} deflections: {c} packets");
    }
    println!(
        "Lemma 2.2 check: per-set congestion watermarks {:?} vs ln(L*N) = {:.2}",
        metrics.congestion_watermarks(),
        metrics.ln_ln_bound()
    );
    if let Some(row) = metrics.frame_progress().last() {
        println!(
            "last frame-progress row: phase {} set {} frontier {} max level {}",
            row.phase, row.set, row.frontier, row.max_level
        );
    }
    println!("sections: {}", profile.summary());

    // 3. Dispatch through the object-safe trait — what the CLI and the
    //    bench runner do — streaming a JSONL event trace to memory.
    let routers: Vec<Box<dyn Router>> = vec![
        Box::new(BuschRouter::new(params)),
        Box::new(GreedyRouter::with_config(GreedyConfig::default())),
    ];
    for router in &routers {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mut trace = JsonlTraceObserver::new(Vec::new());
        let out = router.route(&problem, &mut rng, &mut trace);
        let buf = trace.finish().expect("in-memory writer cannot fail");
        println!(
            "{:<8} {} ({} trace lines)",
            out.algorithm,
            out.stats.summary(),
            buf.iter().filter(|&&b| b == b'\n').count()
        );
    }
}
