//! The paper's §5 extension direction: routing on *arbitrary* (acyclic)
//! topologies. A random DAG is levelized — longest-path layering plus
//! subdivision dummies — and then Busch's leveled-network router runs on
//! it verbatim.
//!
//! ```text
//! cargo run --release --example arbitrary_dag [nodes] [edge_prob%] [seed]
//! ```

use hotpotato_routing::prelude::*;
use leveled_net::levelize::Dag;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use routing_core::dag::{self, DagNetwork};

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(60);
    let prob_pct: u32 = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(8);
    let seed: u64 = std::env::args()
        .nth(3)
        .and_then(|s| s.parse().ok())
        .unwrap_or(5);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // 1. A random DAG (edges only from lower to higher index: acyclic).
    let mut dag = Dag::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(prob_pct as f64 / 100.0) {
                dag.add_edge(u, v);
            }
        }
    }
    println!("DAG: {} nodes, {} edges", dag.num_nodes(), dag.num_edges());

    // 2. Levelize it.
    let dagnet = DagNetwork::new(&dag).expect("acyclic by construction");
    let lz = dagnet.levelized();
    println!(
        "levelized: {} nodes ({} dummies), {} edges, depth L = {}",
        dagnet.network().num_nodes(),
        lz.num_dummies(),
        dagnet.network().num_edges(),
        dagnet.network().depth()
    );

    // 3. A routing problem between original nodes.
    let problem = dag::random_dag_pairs(&dagnet, n / 3, &mut rng).expect("workload fits");
    println!("problem: {}", problem.describe());

    // 4. Route with the paper's algorithm — unchanged.
    let outcome = BuschRouter::new(Params::auto(&problem)).route(&problem, &mut rng);
    println!("busch:  {}", outcome.stats.summary());
    println!("invariants: {}", outcome.invariants.summary());
    assert!(outcome.stats.all_delivered());

    // 5. Baseline for contrast.
    let greedy = baselines::GreedyRouter::new().route(&problem, &mut rng);
    println!("greedy: {}", greedy.stats.summary());

    println!(
        "\nSubdivision dummies have in/out degree 1, so every leveled path\n\
         between original nodes corresponds to a unique DAG path: the\n\
         leveled-network guarantee carries over to the arbitrary DAG."
    );
}
