//! # hotpotato-routing
//!
//! A faithful, from-scratch implementation of Costas Busch's SPAA 2002
//! paper *"Õ(Congestion + Dilation) Hot-Potato Routing on Leveled
//! Networks"*, together with the substrates it needs: leveled-network
//! topologies, routing-problem models, synchronous bufferless and
//! store-and-forward simulators, and baseline deflection algorithms.
//!
//! This façade crate re-exports the public API of every workspace crate so
//! downstream users (and the `examples/`) can depend on a single crate.
//!
//! ## Quick start
//!
//! ```
//! use hotpotato_routing::prelude::*;
//! use rand::SeedableRng;
//!
//! // A 3-dimensional butterfly with a random permutation workload.
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let net = std::sync::Arc::new(builders::butterfly(3));
//! let problem = workloads::random_pairs(&net, 8, &mut rng).unwrap();
//!
//! // Route it with the paper's algorithm under scaled parameters.
//! let outcome = BuschRouter::new(Params::auto(&problem)).route(&problem, &mut rng);
//! assert!(outcome.stats.all_delivered());
//! ```

pub mod guide;

pub use baselines;
pub use busch_router;
pub use hotpotato_sim;
pub use leveled_net;
pub use routing_core;

/// Convenient glob-import surface covering the most used items.
pub mod prelude {
    pub use baselines::{GreedyConfig, GreedyRouter, RandomPriorityRouter, StoreForwardRouter};
    pub use busch_router::{BuschConfig, BuschOutcome, BuschRouter, Params};
    pub use hotpotato_sim::{
        JsonlTraceObserver, MetricsObserver, NoopObserver, RouteObserver, RouteOutcome, RouteStats,
        Router, SectionProfiler, Simulation, SimulationBuilder,
    };
    pub use leveled_net::{builders, Direction, EdgeId, LeveledNetwork, NodeId};
    pub use routing_core::{paths, workloads, Path, RoutingProblem};
}
