//! `hotpotato` — command-line front end for the library.
//!
//! ```text
//! hotpotato topo <SPEC> [--dot]          describe a topology
//! hotpotato route --topo <SPEC> --workload <WL> [--algo A] [--seed S]
//!                 [--spec TOPO/WL[/ALGO[/SEED[/ARRIVAL]]]]
//!                 [--arrival P] [--engine scalar|soa]
//!                 [--max-in-flight N] [--max-deferred N] [--max-steps N]
//!                 [--params m,w,q,sets] [--verify] [--json]
//!                 [--metrics-out PATH] [--trace-out PATH]
//!                 [--aggregate-out PATH] [--aggregate-cap N]
//! hotpotato serve --run TOPO/WL[/ALGO[/SEED[/ARRIVAL]]] [--run ...] [--addr A]
//!                 [--publish-every N] [--rollup-cap N] [--throttle-us N]
//!                 [--engine scalar|soa] [--max-in-flight N] [--max-deferred N]
//! hotpotato serve --fleet --sweep EXPR [--sweep ...] [--addr A] [--workers N]
//!                 [--no-verify] [--throttle-ms N] [--engine scalar|soa]
//!                                        execute a sweep, serve /fleet live
//!                                        (EXPR = run spec where any integer
//!                                         may be a LO..HI range)
//! hotpotato trace verify <FILE> [--jobs N] [--progress] [--json]
//!                                        replay-verify a recorded trace
//! hotpotato trace analyze <FILE> [--out PATH]   aggregate trace report
//! hotpotato trace convert <IN> <OUT>     transcode JSONL ↔ binary (.hpt)
//! hotpotato trace diff <A> <B> [--fail-on METRIC=LIMIT ...]
//!                                        compare two trace analyses; exit 1
//!                                        when |delta| exceeds a threshold
//! hotpotato params <C> <L> <N>           paper §2.1 parameter calculator
//! hotpotato frames <L> <m> <sets>        frontier-frame schedule (Fig. 2)
//!
//! topology SPEC:
//!   butterfly:K | mesh:RxC[:tl|tr|bl|br] | linear:N | complete:LxW
//!   hypercube:D | tree:H | fattree:H[:CAP] | shuffle:K | benes:K
//!   random:L[:WMAX[:PROB[:SEED]]]
//!
//! workload WL:
//!   pairs:N | m2m:N | permutation | bitrev | transpose
//!   hotspot:N:D | funnel:N | level:FROM:TO | blast:FROM:TO
//!
//! algorithms: busch (default) | greedy | ftg | rank | sf | sfrank
//!             (streaming arrivals: greedy | ftg | aging)
//!
//! arrival P (continuous-injection streaming mode):
//!   poisson:RATE | burst:SIZE:PERIOD | replay:T0,T1,... | adversarial:SIZE:GAP
//! ```
//!
//! Examples:
//!
//! ```text
//! hotpotato topo butterfly:5
//! hotpotato route --topo butterfly:6 --workload bitrev --algo busch --verify
//! hotpotato route --topo butterfly:6 --workload bitrev --metrics-out metrics.json
//! hotpotato route --topo butterfly:6 --workload bitrev --trace-out run.jsonl
//! hotpotato trace convert run.jsonl run.hpt
//! hotpotato trace verify run.hpt --jobs 4 --progress
//! hotpotato route --topo mesh:16x16 --workload transpose --algo sf
//! hotpotato serve --run bf:10/bitrev/busch/7 --addr 127.0.0.1:9898
//! hotpotato params 64 32 1024
//! ```

use baselines::{
    GreedyConfig, GreedyPriority, GreedyRouter, RandomPriorityRouter, StoreForwardRouter,
};
use busch_router::{BuschConfig, BuschRouter, FrameSchedule, InvariantReport, PaperParams, Params};
use hotpotato_sim::{
    route_streaming_observed, AdmissionControl, JsonlTraceObserver, MetricsObserver, Router,
    StreamPriority, StreamingConfig,
};
use hotpotato_trace::{schema, StreamingAggregator, Trace};
use leveled_net::render;
use routing_core::spec::{expand_sweep, parse_run_spec, parse_topo, EngineKind, RunSpec};
use routing_core::ArrivalProcess;
use std::io::Write as _;
use std::process::exit;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(std::string::String::as_str) {
        Some("topo") => cmd_topo(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("params") => cmd_params(&args[1..]),
        Some("frames") => cmd_frames(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            print_usage();
            2
        }
    };
    exit(code);
}

fn print_usage() {
    eprintln!(
        "hotpotato — Busch's Õ(C+L) hot-potato routing on leveled networks\n\
         \n\
         usage:\n\
         \u{20}  hotpotato topo <SPEC> [--dot]\n\
         \u{20}  hotpotato route --topo <SPEC> --workload <WL> [--algo A] [--seed S]\n\
         \u{20}                  [--spec TOPO/WL[/ALGO[/SEED[/ARRIVAL]]]]\n\
         \u{20}                  [--arrival P] [--engine scalar|soa]\n\
         \u{20}                  [--max-in-flight N] [--max-deferred N] [--max-steps N]\n\
         \u{20}                  [--params m,w,q,sets] [--verify] [--json]\n\
         \u{20}                  [--metrics-out PATH] [--trace-out PATH]\n\
         \u{20}                  [--aggregate-out PATH] [--aggregate-cap N]\n\
         \u{20}  hotpotato serve --run TOPO/WL[/ALGO[/SEED[/ARRIVAL]]] [--run ...] [--addr A]\n\
         \u{20}                  [--publish-every N] [--rollup-cap N] [--throttle-us N]\n\
         \u{20}                  [--engine scalar|soa] [--max-in-flight N] [--max-deferred N]\n\
         \u{20}  hotpotato serve --fleet --sweep EXPR [--sweep ...] [--addr A] [--workers N]\n\
         \u{20}                  [--no-verify] [--throttle-ms N] [--engine scalar|soa]\n\
         \u{20}                  (EXPR = run spec; any integer may be LO..HI)\n\
         \u{20}  hotpotato trace verify <FILE> [--jobs N] [--progress] [--json]\n\
         \u{20}  hotpotato trace analyze <FILE> [--out PATH]\n\
         \u{20}  hotpotato trace convert <IN> <OUT>\n\
         \u{20}  hotpotato trace diff <A> <B> [--fail-on METRIC=LIMIT ...]\n\
         \u{20}  hotpotato params <C> <L> <N>\n\
         \u{20}  hotpotato frames <L> <m> <sets>\n\
         \n\
         topologies: butterfly:K mesh:RxC[:tl|tr|bl|br] linear:N complete:LxW\n\
         \u{20}           hypercube:D tree:H fattree:H[:CAP] shuffle:K benes:K\n\
         \u{20}           random:L[:WMAX[:PROB[:SEED]]]\n\
         workloads:  pairs:N m2m:N permutation bitrev transpose hotspot:N:D\n\
         \u{20}           funnel:N level:FROM:TO blast:FROM:TO\n\
         algorithms: busch greedy ftg rank sf sfrank (streaming: greedy ftg aging)\n\
         arrivals:   poisson:RATE burst:SIZE:PERIOD replay:T0,T1,... \
         adversarial:SIZE:GAP"
    );
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(std::string::String::as_str)
}

fn cmd_topo(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: hotpotato topo <SPEC> [--dot]");
        return 2;
    };
    match parse_topo(spec) {
        Ok(topo) => {
            if args.iter().any(|a| a == "--dot") {
                print!("{}", render::to_dot(&topo.net));
            } else {
                print!("{}", render::level_summary(&topo.net));
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn cmd_route(args: &[String]) -> i32 {
    // One typed surface: either a full run spec (`--spec TOPO/WL[/ALGO
    // [/SEED[/ARRIVAL]]]`, the same grammar `serve --run` and the bench
    // gate accept) or the individual flags; both produce a `RunSpec`.
    let mut run = match flag_value(args, "--spec") {
        Some(spec) => match parse_run_spec(spec) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
        None => {
            let Some(topo_spec) = flag_value(args, "--topo") else {
                eprintln!("route needs --topo <SPEC> (or --spec TOPO/WL[/ALGO[/SEED[/ARRIVAL]]])");
                return 2;
            };
            let Some(wl_spec) = flag_value(args, "--workload") else {
                eprintln!("route needs --workload <WL>");
                return 2;
            };
            let algo = flag_value(args, "--algo").unwrap_or("busch");
            let seed: u64 = flag_value(args, "--seed")
                .and_then(|s| s.parse().ok())
                .unwrap_or(42);
            RunSpec::batch(topo_spec, wl_spec, algo, seed)
        }
    };
    if let Some(arrival) = flag_value(args, "--arrival") {
        if let Err(e) = ArrivalProcess::parse(arrival) {
            eprintln!("error: {e}");
            return 2;
        }
        run.arrival = Some(arrival.to_string());
    }
    if let Some(engine) = flag_value(args, "--engine") {
        match EngineKind::parse(engine) {
            Ok(kind) => run.engine = Some(kind),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    }
    let verify = args.iter().any(|a| a == "--verify");
    let json = args.iter().any(|a| a == "--json");
    let metrics_out = flag_value(args, "--metrics-out");
    let trace_out = flag_value(args, "--trace-out");
    let aggregate_out = flag_value(args, "--aggregate-out");
    let aggregate_cap: usize = flag_value(args, "--aggregate-cap")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let (topo, problem, mut rng) = match run.instantiate() {
        Ok(parts) => parts,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let algo = run.algo.as_str();
    let seed = run.seed;
    if !json {
        println!("problem:  {}", problem.describe());
        println!(
            "lower bound max(C, D) = {}",
            problem.congestion().max(problem.dilation())
        );
    }

    // Streaming mode resolves its whole configuration up front so a bad
    // algorithm/arrival combination fails before any sink file exists.
    let streaming = match run.arrival_process() {
        Ok(None) => None,
        Ok(Some(process)) => match StreamPriority::for_algo(algo) {
            Ok(priority) => {
                let cfg = StreamingConfig {
                    admission: AdmissionControl {
                        max_in_flight: flag_value(args, "--max-in-flight")
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(256),
                        max_deferred: flag_value(args, "--max-deferred")
                            .and_then(|s| s.parse().ok())
                            .unwrap_or(1024),
                    },
                    priority,
                    max_steps: flag_value(args, "--max-steps")
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(5_000_000),
                    record: verify,
                    ..StreamingConfig::default()
                };
                Some((process, cfg))
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };

    // Algorithm dispatch (batch mode): every router reduces to the same
    // object-safe interface; only the Busch router carries extra pre-run
    // output (parameters) and post-run output (invariants). Streaming
    // drives the conflict core directly, so it builds no router.
    let mut params: Option<Params> = None;
    let router: Option<Box<dyn Router>> = match algo {
        _ if streaming.is_some() => None,
        "busch" => {
            let p = match flag_value(args, "--params") {
                Some(spec) => {
                    let v: Vec<&str> = spec.split(',').collect();
                    if v.len() != 4 {
                        eprintln!("--params wants m,w,q,sets (e.g. 6,48,0.1,4)");
                        return 2;
                    }
                    let (m, w, q, sets): (u32, u32, f64, u32) = (
                        v[0].parse().unwrap_or(6),
                        v[1].parse().unwrap_or(48),
                        v[2].parse().unwrap_or(0.1),
                        v[3].parse().unwrap_or(1),
                    );
                    if m < 3 || w < 1 || !(0.0..=1.0).contains(&q) || sets < 1 {
                        eprintln!("--params out of range: need m ≥ 3, w ≥ 1, 0 ≤ q ≤ 1, sets ≥ 1");
                        return 2;
                    }
                    Params::scaled(m, w, q, sets)
                }
                None => Params::auto(&problem),
            };
            if !json {
                println!(
                    "params:   m={} w={} q={:.3} sets={} (scheduled {} steps)",
                    p.m,
                    p.w,
                    p.q,
                    p.num_sets,
                    p.scheduled_steps(topo.net.depth())
                );
            }
            params = Some(p);
            let cfg = BuschConfig {
                record: verify,
                ..BuschConfig::with_engine(p, run.engine_kind())
            };
            Some(Box::new(BuschRouter::with_config(cfg)))
        }
        "greedy" | "ftg" => {
            let cfg = GreedyConfig {
                priority: if algo == "ftg" {
                    GreedyPriority::FurthestToGo
                } else {
                    GreedyPriority::Uniform
                },
                record: verify,
                ..Default::default()
            };
            Some(Box::new(GreedyRouter::with_config(cfg)))
        }
        "rank" => Some(Box::new(RandomPriorityRouter {
            record: verify,
            ..Default::default()
        })),
        "sf" => Some(Box::new(StoreForwardRouter::fifo())),
        "sfrank" => Some(Box::new(StoreForwardRouter::random_rank(
            problem.congestion() as u64,
        ))),
        other => {
            eprintln!("unknown algorithm '{other}'");
            return 2;
        }
    };

    // Optional event sinks; `(Option<A>, Option<B>)` is itself an
    // observer, and with all sides `None` every hook is a no-op. Trace
    // files are wrapped in a meta/stats envelope so `hotpotato trace
    // verify` can rebuild the instance offline; phase-entry snapshots
    // let the verifier shard the replay across workers.
    let metrics = metrics_out.map(|_| MetricsObserver::new(&problem).with_occupancy_sampling(64));
    let trace = match trace_out {
        Some(path) => {
            let meta = schema::Meta {
                schema: schema::SCHEMA_VERSION,
                topo: run.topo.clone(),
                workload: run.workload.clone(),
                algo: algo.to_string(),
                seed,
                arrival: run.arrival.clone().unwrap_or_default(),
                packets: problem.num_packets() as u64,
                levels: topo.net.num_levels() as u64,
                congestion: u64::from(problem.congestion()),
                dilation: u64::from(problem.dilation()),
            };
            let sink = std::fs::File::create(path).and_then(|f| {
                let mut w = std::io::BufWriter::new(f);
                writeln!(w, "{}", schema::meta_line(&meta))?;
                Ok(w)
            });
            match sink {
                Ok(w) => Some(JsonlTraceObserver::with_snapshots(w, &problem)),
                Err(e) => {
                    eprintln!("error: cannot create {path}: {e}");
                    return 2;
                }
            }
        }
        None => None,
    };
    let aggregate = aggregate_out.map(|_| StreamingAggregator::new(aggregate_cap));
    let mut observer = ((metrics, trace), aggregate);
    // Drive the run: the open-ended injection loop in streaming mode,
    // the batch router otherwise. Both paths feed the same sinks and
    // converge on (stats, record).
    let (stats, record, stream) = match &streaming {
        Some((process, cfg)) => {
            let schedule = process.schedule(problem.num_packets(), &mut rng);
            let out = route_streaming_observed(&problem, &schedule, cfg, &mut rng, &mut observer);
            if !json {
                println!(
                    "stream:   {} arrivals, {} admitted, {} dropped (peak queue {}, \
                     peak in-flight {}), {:.1} pkts/kstep",
                    out.arrivals,
                    out.admitted,
                    out.dropped,
                    out.peak_deferred,
                    out.peak_in_flight,
                    out.throughput() * 1000.0
                );
            }
            let drained = out.drained;
            (out.stats, out.record, Some(drained))
        }
        None => {
            let out = router.expect("batch mode always builds a router").route(
                &problem,
                &mut rng,
                &mut observer,
            );
            (out.stats, out.record, None)
        }
    };
    let ((metrics, trace), aggregate) = observer;

    if let (Some(path), Some(metrics)) = (metrics_out, metrics) {
        let doc = serde_json::json!({
            "algorithm": algo,
            "problem": problem.describe(),
            "metrics": metrics.to_json(),
        });
        match std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize")) {
            Ok(()) => {
                if !json {
                    println!("metrics:  written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                return 1;
            }
        }
    }
    if let Some(trace) = trace {
        let path = trace_out.expect("trace sink implies --trace-out");
        let close = trace.finish().and_then(|mut w| {
            writeln!(w, "{}", schema::stats_line(&stats))?;
            w.flush()
        });
        match close {
            Ok(()) => {
                if !json {
                    println!("trace:    written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                return 1;
            }
        }
    }
    if let (Some(path), Some(aggregate)) = (aggregate_out, aggregate) {
        let doc = aggregate.to_json();
        match std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize")) {
            Ok(()) => {
                if !json {
                    println!("rollup:   written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                return 1;
            }
        }
    }

    // Streaming failure = the run hit its step cap before draining;
    // batch failure = some packet was never delivered (drops are a
    // legitimate streaming outcome, not a failure).
    let failed = match stream {
        Some(drained) => !drained,
        None => !stats.all_delivered(),
    };

    if json {
        let doc = if algo == "busch" {
            serde_json::json!({
                "algorithm": algo,
                "problem": problem.describe(),
                "params": params.expect("busch always has params"),
                "stats": stats,
                "latency": stats.latency_summary(),
                "invariants": InvariantReport::from_counters(&stats.counters),
                "phases_elapsed": stats.counter("phases"),
            })
        } else if stream.is_some() {
            serde_json::json!({
                "algorithm": algo,
                "problem": problem.describe(),
                "arrival": run.arrival.clone().unwrap_or_default(),
                "stats": stats,
                "latency": stats.latency_summary(),
                "arrivals": stats.counter("arrivals"),
                "admitted": stats.counter("admitted"),
                "dropped": stats.counter("dropped"),
                "drained": stream == Some(true),
            })
        } else {
            serde_json::json!({
                "algorithm": algo,
                "problem": problem.describe(),
                "stats": stats,
                "latency": stats.latency_summary(),
            })
        };
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return i32::from(failed);
    }

    if stream.is_some() {
        println!("{algo}:   {}", stats.summary());
        println!("latency:  {}", stats.latency_summary());
    } else {
        match algo {
            "busch" => println!("busch:    {}", stats.summary()),
            "greedy" | "ftg" => println!("{algo}:   {}", stats.summary()),
            "rank" => println!("rank:     {}", stats.summary()),
            "sf" => println!(
                "sf:       {} (max queue {})",
                stats.summary(),
                stats.counter("max_queue")
            ),
            "sfrank" => println!(
                "sfrank:   {} (max queue {})",
                stats.summary(),
                stats.counter("max_queue")
            ),
            _ => unreachable!("dispatch rejected unknown algorithms"),
        }
        if matches!(algo, "busch" | "greedy" | "ftg") {
            println!("latency:  {}", stats.latency_summary());
        }
        if algo == "busch" {
            println!(
                "invariants: {}",
                InvariantReport::from_counters(&stats.counters).summary()
            );
        }
    }
    if verify {
        if let Some(record) = record.as_ref() {
            match hotpotato_sim::replay::verify(&problem, record, &stats) {
                Ok(rep) => {
                    if algo == "busch" {
                        println!(
                            "replay:   VERIFIED ({} moves, {} fwd / {} bwd)",
                            rep.moves, rep.forward, rep.backward
                        );
                    } else {
                        println!("replay:   VERIFIED ({} moves)", rep.moves);
                    }
                }
                Err(e) => {
                    eprintln!("replay:   FAILED: {e}");
                    return 1;
                }
            }
        } else {
            eprintln!("replay:   unavailable ({algo} does not record moves)");
        }
    }
    i32::from(failed)
}

/// Reads a trace file, sniffing the `.hpt` magic: binary traces are
/// decoded, everything else is strictly parsed as JSONL (across `jobs`
/// threads when > 1). Returns the trace and its on-disk size in bytes.
fn load_trace(path: &str, jobs: usize) -> Result<(Trace, u64), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let size = bytes.len() as u64;
    let trace = if hotpotato_trace::is_binary(&bytes) {
        hotpotato_trace::decode_trace(&bytes).map_err(|e| format!("{path}: {e}"))?
    } else {
        let text =
            String::from_utf8(bytes).map_err(|e| format!("{path}: trace is not UTF-8 ({e})"))?;
        hotpotato_trace::parse_jsonl_parallel(&text, jobs).map_err(|e| format!("{path}: {e}"))?
    };
    Ok((trace, size))
}

fn cmd_serve(args: &[String]) -> i32 {
    if args.iter().any(|a| a == "--fleet") {
        return cmd_serve_fleet(args);
    }
    let specs: Vec<&str> = args
        .windows(2)
        .filter(|w| w[0] == "--run")
        .map(|w| w[1].as_str())
        .collect();
    if specs.is_empty() {
        eprintln!(
            "serve needs at least one --run TOPO/WL[/ALGO[/SEED[/ARRIVAL]]] \
             (e.g. --run bf:10/bitrev/busch/7 or --run bf:10/pairs:64/greedy/7/poisson:0.5)"
        );
        return 2;
    }
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:9898");
    let publish_every: u64 = flag_value(args, "--publish-every")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let rollup_cap: usize = flag_value(args, "--rollup-cap")
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    let throttle_us: u64 = flag_value(args, "--throttle-us")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let engine = match flag_value(args, "--engine") {
        Some(s) => match EngineKind::parse(s) {
            Ok(kind) => Some(kind),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
        None => None,
    };
    let admission = AdmissionControl {
        max_in_flight: flag_value(args, "--max-in-flight")
            .and_then(|s| s.parse().ok())
            .unwrap_or(256),
        max_deferred: flag_value(args, "--max-deferred")
            .and_then(|s| s.parse().ok())
            .unwrap_or(1024),
    };

    let mut configs = Vec::with_capacity(specs.len());
    for spec in specs {
        match parse_run_spec(spec) {
            Ok(mut run) => {
                run.engine = engine;
                configs.push(serve::RunConfig {
                    spec: run,
                    publish_every,
                    rollup_cap,
                    throttle_us,
                    admission,
                });
            }
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    }
    let service = match serve::Service::launch(configs) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let server = match serve::http::HttpServer::bind(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return 1;
        }
    };
    let bound = server.local_addr();
    println!("serving on http://{bound}");
    for name in service.run_names() {
        println!("  run: {name}  (rollup at /rollup/{name})");
    }
    println!("endpoints: /metrics /runs /healthz /rollup/<run>");
    // Serves forever (runs keep their final snapshots available after
    // they quiesce); only an accept-loop error returns.
    let err = server.serve(serve::service::into_handler(service));
    eprintln!("error: accept loop failed: {err}");
    1
}

/// `serve --fleet`: expand every `--sweep` expression, execute the whole
/// queue on the worker pool, and serve the cross-run aggregation live.
/// Keeps serving the final rollup after the sweep completes.
fn cmd_serve_fleet(args: &[String]) -> i32 {
    let sweeps: Vec<&str> = args
        .windows(2)
        .filter(|w| w[0] == "--sweep")
        .map(|w| w[1].as_str())
        .collect();
    if sweeps.is_empty() {
        eprintln!(
            "serve --fleet needs at least one --sweep TOPO/WL[/ALGO[/SEED[/ARRIVAL]]] \
             where any integer may be a LO..HI range \
             (e.g. --sweep bf:6..10/bitrev/busch/1..25)"
        );
        return 2;
    }
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:9898");
    let workers: usize = flag_value(args, "--workers")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let throttle_ms: u64 = flag_value(args, "--throttle-ms")
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    let verify = !args.iter().any(|a| a == "--no-verify");
    let engine = match flag_value(args, "--engine") {
        Some(s) => match EngineKind::parse(s) {
            Ok(kind) => Some(kind),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        },
        None => None,
    };
    let mut specs = Vec::new();
    for sweep in sweeps {
        match expand_sweep(sweep) {
            Ok(expanded) => specs.extend(expanded),
            Err(e) => {
                eprintln!("error: {e}");
                return 2;
            }
        }
    }
    for spec in &mut specs {
        spec.engine = engine;
    }
    let service = match serve::FleetService::launch(serve::FleetConfig {
        specs,
        workers,
        verify,
        throttle_ms,
    }) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let server = match serve::http::HttpServer::bind(addr) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {addr}: {e}");
            return 1;
        }
    };
    let bound = server.local_addr();
    println!(
        "serving fleet on http://{bound}  ({} runs on {} workers, verify {})",
        service.total(),
        service.workers(),
        if verify { "on" } else { "off" }
    );
    println!("endpoints: /fleet /fleet/progress /metrics /healthz");
    let err = server.serve(serve::into_fleet_handler(service));
    eprintln!("error: accept loop failed: {err}");
    1
}

fn cmd_trace(args: &[String]) -> i32 {
    let usage = || {
        eprintln!(
            "usage: hotpotato trace verify <FILE> [--jobs N] [--progress] [--json]\n\
             \u{20}      hotpotato trace analyze <FILE> [--out PATH]\n\
             \u{20}      hotpotato trace convert <IN> <OUT>\n\
             \u{20}      hotpotato trace diff <A> <B>"
        );
        2
    };
    match args.first().map(std::string::String::as_str) {
        Some("verify") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let jobs = match flag_value(args, "--jobs") {
                None => 0,
                Some(s) => match s.parse::<usize>() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--jobs wants a number (got '{s}')");
                        return 2;
                    }
                },
            };
            let jobs = if jobs == 0 {
                hotpotato_sim::pool_core::configured_threads()
            } else {
                jobs
            };
            let progress = args.iter().any(|a| a == "--progress");
            let json = args.iter().any(|a| a == "--json");
            let started = std::time::Instant::now();
            let (trace, bytes) = match load_trace(path, jobs) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let trace = std::sync::Arc::new(trace);
            let opts = hotpotato_trace::ShardOptions { jobs, progress };
            match hotpotato_trace::verify_trace_sharded(&trace, &opts) {
                Ok(run) => {
                    let pipeline = hotpotato_trace::PipelineTelemetry {
                        events: trace.events.len() as u64,
                        bytes,
                        wall_s: started.elapsed().as_secs_f64(),
                        jobs: run.jobs,
                        shards: run.shards,
                        busy_s: run.busy_s,
                        peak_rss_bytes: hotpotato_trace::peak_rss_bytes(),
                    };
                    let rep = &run.report;
                    if json {
                        let doc = serde_json::json!({
                            "ok": true,
                            "instance": trace.meta().map(|m| serde_json::json!({
                                "topo": m.topo.clone(),
                                "workload": m.workload.clone(),
                                "algo": m.algo.clone(),
                                "seed": m.seed,
                            })),
                            "verified": serde_json::json!({
                                "packets": rep.packets,
                                "steps": rep.steps,
                                "moves": rep.moves,
                                "forward": rep.forward,
                                "backward": rep.backward,
                                "delivered": rep.delivered,
                                "trivial": rep.trivial,
                                "deflections": rep.deflections,
                                "oscillations": rep.oscillations,
                                "replay_cross_checked": rep.replay_cross_checked,
                            }),
                            "pipeline": pipeline.to_json(),
                        });
                        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
                        return 0;
                    }
                    if let Some(m) = trace.meta() {
                        println!(
                            "instance: {} / {} / {} (seed {})",
                            m.topo, m.workload, m.algo, m.seed
                        );
                    }
                    println!(
                        "verified: {} packets, {} steps, {} moves ({} fwd / {} bwd)",
                        rep.packets, rep.steps, rep.moves, rep.forward, rep.backward
                    );
                    println!(
                        "\u{20}         {} delivered ({} trivial), {} deflections, {} \
                         oscillations, 0 violations",
                        rep.delivered, rep.trivial, rep.deflections, rep.oscillations
                    );
                    if rep.replay_cross_checked {
                        println!("replay:   independent auditor concurs");
                    } else {
                        println!("replay:   skipped (buffered store-and-forward trace)");
                    }
                    let util = pipeline
                        .shard_utilization()
                        .map_or_else(|| "n/a".to_string(), |u| format!("{:.0}%", u * 100.0));
                    let rss = pipeline.peak_rss_bytes.map_or_else(
                        || "n/a".to_string(),
                        |b| format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)),
                    );
                    println!(
                        "pipeline: {:.3e} events/s, {:.3e} bytes/s, {} shards over {} \
                         jobs (busy {util}), peak RSS {rss}",
                        pipeline.events_per_s(),
                        pipeline.bytes_per_s(),
                        run.shards,
                        run.jobs
                    );
                    0
                }
                Err(e) => {
                    eprintln!("verify:   FAILED: {e}");
                    1
                }
            }
        }
        Some("analyze") => {
            let Some(path) = args.get(1) else {
                return usage();
            };
            let started = std::time::Instant::now();
            let jobs = hotpotato_sim::pool_core::configured_threads();
            let (trace, bytes) = match load_trace(path, jobs) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let mut report = hotpotato_trace::analyze(&trace).to_json();
            let pipeline = hotpotato_trace::PipelineTelemetry {
                events: trace.events.len() as u64,
                bytes,
                wall_s: started.elapsed().as_secs_f64(),
                jobs,
                shards: 0,
                busy_s: 0.0,
                peak_rss_bytes: hotpotato_trace::peak_rss_bytes(),
            };
            if let serde_json::Value::Object(members) = &mut report {
                members.push(("pipeline".to_string(), pipeline.to_json()));
            }
            let text = serde_json::to_string_pretty(&report).expect("serialize");
            match flag_value(args, "--out") {
                Some(out) => {
                    if let Err(e) = std::fs::write(out, text) {
                        eprintln!("error: writing {out}: {e}");
                        return 1;
                    }
                    println!("report:   written to {out}");
                }
                None => println!("{text}"),
            }
            0
        }
        Some("convert") => {
            let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            let bytes = match std::fs::read(input) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("error: cannot read {input}: {e}");
                    return 2;
                }
            };
            let in_len = bytes.len();
            let (out_bytes, direction) = if hotpotato_trace::is_binary(&bytes) {
                match hotpotato_trace::decode_trace(&bytes) {
                    Ok(trace) => {
                        let mut text = String::new();
                        for ev in &trace.events {
                            text.push_str(&schema::event_line(ev));
                            text.push('\n');
                        }
                        (text.into_bytes(), "binary -> jsonl")
                    }
                    Err(e) => {
                        eprintln!("error: {input}: {e}");
                        return 2;
                    }
                }
            } else {
                let text = match String::from_utf8(bytes) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("error: {input}: trace is not UTF-8 ({e})");
                        return 2;
                    }
                };
                match Trace::parse(&text) {
                    Ok(trace) => (hotpotato_trace::encode_trace(&trace), "jsonl -> binary"),
                    Err(e) => {
                        eprintln!("error: {input}: {e}");
                        return 2;
                    }
                }
            };
            if let Err(e) = std::fs::write(output, &out_bytes) {
                eprintln!("error: writing {output}: {e}");
                return 1;
            }
            println!(
                "convert:  {direction}, {in_len} -> {} bytes ({:.1}% of input)",
                out_bytes.len(),
                out_bytes.len() as f64 / in_len as f64 * 100.0
            );
            0
        }
        Some("diff") => {
            let (Some(a), Some(b)) = (args.get(1), args.get(2)) else {
                return usage();
            };
            // `--fail-on METRIC=LIMIT` (repeatable): exit nonzero when
            // |delta| of that diff row exceeds LIMIT, so CI can gate on
            // regressions (ratio drift, drop-rate spikes) directly.
            let mut thresholds: Vec<(&str, f64)> = Vec::new();
            for w in args.windows(2).filter(|w| w[0] == "--fail-on") {
                let Some((metric, limit)) = w[1].split_once('=') else {
                    eprintln!("--fail-on wants METRIC=LIMIT (got '{}')", w[1]);
                    return 2;
                };
                let Ok(limit) = limit.parse::<f64>() else {
                    eprintln!("--fail-on limit '{limit}' is not a number");
                    return 2;
                };
                thresholds.push((metric, limit));
            }
            let jobs = hotpotato_sim::pool_core::configured_threads();
            let traces =
                load_trace(a, jobs).and_then(|(ta, _)| load_trace(b, jobs).map(|(tb, _)| (ta, tb)));
            let (ta, tb) = match traces {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: {e}");
                    return 2;
                }
            };
            let doc = hotpotato_trace::diff(
                &hotpotato_trace::analyze(&ta),
                &hotpotato_trace::analyze(&tb),
            );
            println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
            let rows = doc["rows"].as_array().cloned().unwrap_or_default();
            let mut breached = 0;
            for (metric, limit) in thresholds {
                let row = rows.iter().find(|r| r["metric"].as_str() == Some(metric));
                let Some(row) = row else {
                    eprintln!("error: --fail-on metric '{metric}' is not a diff row");
                    return 2;
                };
                let delta = row["delta"].as_f64().unwrap_or(f64::NAN).abs();
                // A NaN delta (non-numeric row) breaches, never passes.
                if delta.is_nan() || delta > limit {
                    eprintln!("fail-on: |Δ{metric}| = {delta} exceeds {limit}");
                    breached += 1;
                }
            }
            if breached > 0 {
                1
            } else {
                0
            }
        }
        _ => usage(),
    }
}

fn cmd_params(args: &[String]) -> i32 {
    let vals: Vec<u64> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let [c, l, n] = vals[..] else {
        eprintln!("usage: hotpotato params <C> <L> <N>");
        return 2;
    };
    let p = PaperParams::new(c, l, n);
    println!(
        "paper parameters for C={c}, L={l}, N={n} (ln(LN) = {:.3}):",
        p.ln_ln
    );
    println!(
        "  a      = {:.6}  (frontier sets ⌈aC⌉ = {})",
        p.a,
        p.num_sets()
    );
    println!("  m      = {:.1}", p.m);
    println!("  q      = {:.3e}", p.q);
    println!("  w      = {:.3e}", p.w);
    println!("  p0     = {:.12}", p.p0);
    println!("  p1     = {:.3e}", p.p1);
    println!("  phases = {:.3e}  (⌈aC⌉·m + L)", p.total_phases());
    println!("  time   = {:.3e}  steps  (phases · m · w)", p.total_time());
    println!(
        "  Õ      = {:.3e}  = time/(C+L);   ln⁹(LN) = {:.3e}",
        p.polylog_factor(),
        p.ln_ln.powi(9)
    );
    println!(
        "  success ≥ {:.9}  (Theorem 2.6 bound 1 − 1/LN = {:.9})",
        p.success_probability(),
        p.success_lower_bound()
    );
    0
}

fn cmd_frames(args: &[String]) -> i32 {
    let vals: Vec<u32> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let [l, m, sets] = vals[..] else {
        eprintln!("usage: hotpotato frames <L> <m> <sets>");
        return 2;
    };
    if m < 3 {
        eprintln!("frames need at least 3 inner levels (got m = {m})");
        return 2;
    }
    if sets < 1 {
        eprintln!("need at least one frontier set");
        return 2;
    }
    let s = FrameSchedule::new(m, sets, l);
    for phase in 0..s.end_phase() {
        print!("phase {phase:>4}  ");
        for level in 0..=l {
            match (0..sets).find(|&i| s.contains(i, phase, level)) {
                Some(i) => print!("{}", i % 10),
                None => print!("."),
            }
        }
        println!();
    }
    println!("(all frames gone at phase {})", s.end_phase());
    0
}
