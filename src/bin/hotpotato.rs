//! `hotpotato` — command-line front end for the library.
//!
//! ```text
//! hotpotato topo <SPEC> [--dot]          describe a topology
//! hotpotato route --topo <SPEC> --workload <WL> [--algo A] [--seed S]
//!                 [--params m,w,q,sets] [--verify] [--json]
//!                 [--metrics-out PATH] [--trace-out PATH]
//! hotpotato params <C> <L> <N>           paper §2.1 parameter calculator
//! hotpotato frames <L> <m> <sets>        frontier-frame schedule (Fig. 2)
//!
//! topology SPEC:
//!   butterfly:K | mesh:RxC[:tl|tr|bl|br] | linear:N | complete:LxW
//!   hypercube:D | tree:H | fattree:H[:CAP] | shuffle:K | benes:K
//!   random:L[:WMAX[:PROB[:SEED]]]
//!
//! workload WL:
//!   pairs:N | m2m:N | permutation | bitrev | transpose
//!   hotspot:N:D | funnel:N | level:FROM:TO | blast:FROM:TO
//!
//! algorithms: busch (default) | greedy | ftg | rank | sf | sfrank
//! ```
//!
//! Examples:
//!
//! ```text
//! hotpotato topo butterfly:5
//! hotpotato route --topo butterfly:6 --workload bitrev --algo busch --verify
//! hotpotato route --topo butterfly:6 --workload bitrev --metrics-out metrics.json
//! hotpotato route --topo mesh:16x16 --workload transpose --algo sf
//! hotpotato params 64 32 1024
//! ```

use baselines::{
    GreedyConfig, GreedyPriority, GreedyRouter, RandomPriorityRouter, StoreForwardRouter,
};
use busch_router::{BuschConfig, BuschRouter, FrameSchedule, InvariantReport, PaperParams, Params};
use hotpotato_routing::prelude::*;
use hotpotato_sim::{JsonlTraceObserver, MetricsObserver, Router};
use leveled_net::builders::{ButterflyCoords, MeshCoords, MeshCorner};
use leveled_net::{render, LeveledNetwork};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::io::Write as _;
use std::process::exit;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(|s| s.as_str()) {
        Some("topo") => cmd_topo(&args[1..]),
        Some("route") => cmd_route(&args[1..]),
        Some("params") => cmd_params(&args[1..]),
        Some("frames") => cmd_frames(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            0
        }
        Some(other) => {
            eprintln!("unknown command '{other}'");
            print_usage();
            2
        }
    };
    exit(code);
}

fn print_usage() {
    eprintln!(
        "hotpotato — Busch's Õ(C+L) hot-potato routing on leveled networks\n\
         \n\
         usage:\n\
         \u{20}  hotpotato topo <SPEC> [--dot]\n\
         \u{20}  hotpotato route --topo <SPEC> --workload <WL> [--algo A] [--seed S]\n\
         \u{20}                  [--params m,w,q,sets] [--verify] [--json]\n\
         \u{20}                  [--metrics-out PATH] [--trace-out PATH]\n\
         \u{20}  hotpotato params <C> <L> <N>\n\
         \u{20}  hotpotato frames <L> <m> <sets>\n\
         \n\
         topologies: butterfly:K mesh:RxC[:tl|tr|bl|br] linear:N complete:LxW\n\
         \u{20}           hypercube:D tree:H fattree:H[:CAP] shuffle:K benes:K\n\
         \u{20}           random:L[:WMAX[:PROB[:SEED]]]\n\
         workloads:  pairs:N m2m:N permutation bitrev transpose hotspot:N:D\n\
         \u{20}           funnel:N level:FROM:TO blast:FROM:TO\n\
         algorithms: busch greedy ftg rank sf sfrank"
    );
}

/// The parsed topology plus coordinate helpers some workloads need.
struct Topo {
    net: Arc<LeveledNetwork>,
    butterfly: Option<ButterflyCoords>,
    mesh: Option<MeshCoords>,
}

fn parse_topo(spec: &str) -> Result<Topo, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let kind = parts[0];
    let arg = |i: usize| -> Result<&str, String> {
        parts
            .get(i)
            .copied()
            .ok_or_else(|| format!("topology '{kind}' needs an argument at position {i}"))
    };
    let num = |s: &str| -> Result<u32, String> {
        s.parse::<u32>().map_err(|_| format!("bad number '{s}'"))
    };
    let plain = |net: LeveledNetwork| Topo {
        net: Arc::new(net),
        butterfly: None,
        mesh: None,
    };
    match kind {
        "butterfly" | "bf" => {
            let k = num(arg(1)?)?;
            if !(1..28).contains(&k) {
                return Err(format!("butterfly dimension {k} out of range (1..=27)"));
            }
            Ok(Topo {
                net: Arc::new(builders::butterfly(k)),
                butterfly: Some(ButterflyCoords { k }),
                mesh: None,
            })
        }
        "mesh" => {
            let dims: Vec<&str> = arg(1)?.split('x').collect();
            if dims.len() != 2 {
                return Err("mesh needs RxC, e.g. mesh:8x8".into());
            }
            let (r, c) = (num(dims[0])? as usize, num(dims[1])? as usize);
            let corner = match parts.get(2).copied().unwrap_or("tl") {
                "tl" => MeshCorner::TopLeft,
                "tr" => MeshCorner::TopRight,
                "bl" => MeshCorner::BottomLeft,
                "br" => MeshCorner::BottomRight,
                other => return Err(format!("unknown mesh corner '{other}'")),
            };
            let (net, coords) = builders::mesh(r, c, corner);
            Ok(Topo {
                net: Arc::new(net),
                butterfly: None,
                mesh: Some(coords),
            })
        }
        "linear" => Ok(plain(builders::linear_array(num(arg(1)?)? as usize))),
        "complete" => {
            let dims: Vec<&str> = arg(1)?.split('x').collect();
            if dims.len() != 2 {
                return Err("complete needs LxW, e.g. complete:10x4".into());
            }
            Ok(plain(builders::complete_leveled(
                num(dims[0])?,
                num(dims[1])? as usize,
            )))
        }
        "hypercube" => Ok(plain(builders::hypercube(num(arg(1)?)?).0)),
        "tree" => Ok(plain(builders::binary_tree(num(arg(1)?)?))),
        "fattree" => {
            let h = num(arg(1)?)?;
            let cap = parts.get(2).map(|s| num(s)).transpose()?.unwrap_or(4) as usize;
            Ok(plain(builders::fat_tree(h, cap)))
        }
        "shuffle" => {
            let k = num(arg(1)?)?;
            if !(1..28).contains(&k) {
                return Err(format!(
                    "shuffle-exchange dimension {k} out of range (1..=27)"
                ));
            }
            Ok(plain(builders::shuffle_exchange_unrolled(k)))
        }
        "benes" => {
            let k = num(arg(1)?)?;
            if !(1..27).contains(&k) {
                return Err(format!("Beneš dimension {k} out of range (1..=26)"));
            }
            Ok(plain(builders::benes(k).0))
        }
        "random" => {
            let l = num(arg(1)?)?;
            let wmax = parts.get(2).map(|s| num(s)).transpose()?.unwrap_or(4) as usize;
            let prob = parts
                .get(3)
                .map(|s| {
                    s.parse::<f64>()
                        .map_err(|_| format!("bad probability '{s}'"))
                })
                .transpose()?
                .unwrap_or(0.3);
            let seed = parts.get(4).map(|s| num(s)).transpose()?.unwrap_or(1) as u64;
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            Ok(plain(builders::random_leveled(l, 1..=wmax, prob, &mut rng)))
        }
        other => Err(format!("unknown topology '{other}'")),
    }
}

fn parse_workload(
    spec: &str,
    topo: &Topo,
    rng: &mut ChaCha8Rng,
) -> Result<Arc<routing_core::RoutingProblem>, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |i: usize| -> Result<usize, String> {
        parts
            .get(i)
            .ok_or_else(|| format!("workload '{}' needs an argument", parts[0]))?
            .parse::<usize>()
            .map_err(|e| format!("bad number: {e}"))
    };
    let net = &topo.net;
    match parts[0] {
        "pairs" => workloads::random_pairs(net, num(1)?, rng).map_err(|e| e.to_string()),
        "m2m" => workloads::many_to_many(net, num(1)?, rng).map_err(|e| e.to_string()),
        "permutation" | "perm" => {
            let coords = topo
                .butterfly
                .ok_or("permutation needs a butterfly topology")?;
            Ok(workloads::butterfly_permutation(net, &coords, rng))
        }
        "bitrev" => {
            let coords = topo.butterfly.ok_or("bitrev needs a butterfly topology")?;
            Ok(workloads::butterfly_bit_reversal(net, &coords))
        }
        "transpose" => {
            let coords = topo.mesh.ok_or("transpose needs a mesh topology")?;
            workloads::mesh_transpose(net, &coords).map_err(|e| e.to_string())
        }
        "hotspot" => workloads::hotspot(net, num(1)?, num(2)?, rng).map_err(|e| e.to_string()),
        "funnel" => workloads::funnel(net, num(1)?, rng).map_err(|e| e.to_string()),
        "level" => workloads::level_to_level(net, num(1)? as u32, num(2)? as u32, rng)
            .map_err(|e| e.to_string()),
        "blast" => workloads::first_fit_blast(net, num(1)? as u32, num(2)? as u32)
            .map_err(|e| e.to_string()),
        other => Err(format!("unknown workload '{other}'")),
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn cmd_topo(args: &[String]) -> i32 {
    let Some(spec) = args.first() else {
        eprintln!("usage: hotpotato topo <SPEC> [--dot]");
        return 2;
    };
    match parse_topo(spec) {
        Ok(topo) => {
            if args.iter().any(|a| a == "--dot") {
                print!("{}", render::to_dot(&topo.net));
            } else {
                print!("{}", render::level_summary(&topo.net));
            }
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            2
        }
    }
}

fn cmd_route(args: &[String]) -> i32 {
    let Some(topo_spec) = flag_value(args, "--topo") else {
        eprintln!("route needs --topo <SPEC>");
        return 2;
    };
    let Some(wl_spec) = flag_value(args, "--workload") else {
        eprintln!("route needs --workload <WL>");
        return 2;
    };
    let algo = flag_value(args, "--algo").unwrap_or("busch");
    let seed: u64 = flag_value(args, "--seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let verify = args.iter().any(|a| a == "--verify");
    let json = args.iter().any(|a| a == "--json");
    let metrics_out = flag_value(args, "--metrics-out");
    let trace_out = flag_value(args, "--trace-out");

    let topo = match parse_topo(topo_spec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let problem = match parse_workload(wl_spec, &topo, &mut rng) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 2;
        }
    };
    if !json {
        println!("problem:  {}", problem.describe());
        println!(
            "lower bound max(C, D) = {}",
            problem.congestion().max(problem.dilation())
        );
    }

    // Algorithm dispatch: every router reduces to the same object-safe
    // interface; only the Busch router carries extra pre-run output
    // (parameters) and post-run output (invariants).
    let mut params: Option<Params> = None;
    let router: Box<dyn Router> = match algo {
        "busch" => {
            let p = match flag_value(args, "--params") {
                Some(spec) => {
                    let v: Vec<&str> = spec.split(',').collect();
                    if v.len() != 4 {
                        eprintln!("--params wants m,w,q,sets (e.g. 6,48,0.1,4)");
                        return 2;
                    }
                    let (m, w, q, sets): (u32, u32, f64, u32) = (
                        v[0].parse().unwrap_or(6),
                        v[1].parse().unwrap_or(48),
                        v[2].parse().unwrap_or(0.1),
                        v[3].parse().unwrap_or(1),
                    );
                    if m < 3 || w < 1 || !(0.0..=1.0).contains(&q) || sets < 1 {
                        eprintln!("--params out of range: need m ≥ 3, w ≥ 1, 0 ≤ q ≤ 1, sets ≥ 1");
                        return 2;
                    }
                    Params::scaled(m, w, q, sets)
                }
                None => Params::auto(&problem),
            };
            if !json {
                println!(
                    "params:   m={} w={} q={:.3} sets={} (scheduled {} steps)",
                    p.m,
                    p.w,
                    p.q,
                    p.num_sets,
                    p.scheduled_steps(topo.net.depth())
                );
            }
            params = Some(p);
            let cfg = BuschConfig {
                record: verify,
                ..BuschConfig::new(p)
            };
            Box::new(BuschRouter::with_config(cfg))
        }
        "greedy" | "ftg" => {
            let cfg = GreedyConfig {
                priority: if algo == "ftg" {
                    GreedyPriority::FurthestToGo
                } else {
                    GreedyPriority::Uniform
                },
                record: verify,
                ..Default::default()
            };
            Box::new(GreedyRouter::with_config(cfg))
        }
        "rank" => Box::new(RandomPriorityRouter {
            record: verify,
            ..Default::default()
        }),
        "sf" => Box::new(StoreForwardRouter::fifo()),
        "sfrank" => Box::new(StoreForwardRouter::random_rank(problem.congestion() as u64)),
        other => {
            eprintln!("unknown algorithm '{other}'");
            return 2;
        }
    };

    // Optional event sinks; `(Option<A>, Option<B>)` is itself an
    // observer, and with both sides `None` every hook is a no-op.
    let metrics = metrics_out.map(|_| MetricsObserver::new(&problem).with_occupancy_sampling(64));
    let trace = match trace_out {
        Some(path) => match std::fs::File::create(path) {
            Ok(f) => Some(JsonlTraceObserver::new(std::io::BufWriter::new(f))),
            Err(e) => {
                eprintln!("error: cannot create {path}: {e}");
                return 2;
            }
        },
        None => None,
    };
    let mut observer = (metrics, trace);
    let out = router.route(&problem, &mut rng, &mut observer);
    let (metrics, trace) = observer;

    if let (Some(path), Some(metrics)) = (metrics_out, metrics) {
        let doc = serde_json::json!({
            "algorithm": algo,
            "problem": problem.describe(),
            "metrics": metrics.to_json(),
        });
        match std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize")) {
            Ok(()) => {
                if !json {
                    println!("metrics:  written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                return 1;
            }
        }
    }
    if let Some(trace) = trace {
        let path = trace_out.expect("trace sink implies --trace-out");
        match trace.finish().and_then(|mut w| w.flush()) {
            Ok(()) => {
                if !json {
                    println!("trace:    written to {path}");
                }
            }
            Err(e) => {
                eprintln!("error: writing {path}: {e}");
                return 1;
            }
        }
    }

    if json {
        let doc = if algo == "busch" {
            serde_json::json!({
                "algorithm": algo,
                "problem": problem.describe(),
                "params": params.expect("busch always has params"),
                "stats": out.stats,
                "latency": out.stats.latency_summary(),
                "invariants": InvariantReport::from_counters(&out.stats.counters),
                "phases_elapsed": out.stats.counter("phases"),
            })
        } else {
            serde_json::json!({
                "algorithm": algo,
                "problem": problem.describe(),
                "stats": out.stats,
                "latency": out.stats.latency_summary(),
            })
        };
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize"));
        return i32::from(!out.stats.all_delivered());
    }

    match algo {
        "busch" => println!("busch:    {}", out.stats.summary()),
        "greedy" | "ftg" => println!("{algo}:   {}", out.stats.summary()),
        "rank" => println!("rank:     {}", out.stats.summary()),
        "sf" => println!(
            "sf:       {} (max queue {})",
            out.stats.summary(),
            out.stats.counter("max_queue")
        ),
        "sfrank" => println!(
            "sfrank:   {} (max queue {})",
            out.stats.summary(),
            out.stats.counter("max_queue")
        ),
        _ => unreachable!("dispatch rejected unknown algorithms"),
    }
    if matches!(algo, "busch" | "greedy" | "ftg") {
        println!("latency:  {}", out.stats.latency_summary());
    }
    if algo == "busch" {
        println!(
            "invariants: {}",
            InvariantReport::from_counters(&out.stats.counters).summary()
        );
    }
    if verify {
        if let Some(record) = out.record.as_ref() {
            match hotpotato_sim::replay::verify(&problem, record, &out.stats) {
                Ok(rep) => {
                    if algo == "busch" {
                        println!(
                            "replay:   VERIFIED ({} moves, {} fwd / {} bwd)",
                            rep.moves, rep.forward, rep.backward
                        );
                    } else {
                        println!("replay:   VERIFIED ({} moves)", rep.moves);
                    }
                }
                Err(e) => {
                    eprintln!("replay:   FAILED: {e}");
                    return 1;
                }
            }
        } else {
            eprintln!("replay:   unavailable ({algo} does not record moves)");
        }
    }
    i32::from(!out.stats.all_delivered())
}

fn cmd_params(args: &[String]) -> i32 {
    let vals: Vec<u64> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let [c, l, n] = vals[..] else {
        eprintln!("usage: hotpotato params <C> <L> <N>");
        return 2;
    };
    let p = PaperParams::new(c, l, n);
    println!(
        "paper parameters for C={c}, L={l}, N={n} (ln(LN) = {:.3}):",
        p.ln_ln
    );
    println!(
        "  a      = {:.6}  (frontier sets ⌈aC⌉ = {})",
        p.a,
        p.num_sets()
    );
    println!("  m      = {:.1}", p.m);
    println!("  q      = {:.3e}", p.q);
    println!("  w      = {:.3e}", p.w);
    println!("  p0     = {:.12}", p.p0);
    println!("  p1     = {:.3e}", p.p1);
    println!("  phases = {:.3e}  (⌈aC⌉·m + L)", p.total_phases());
    println!("  time   = {:.3e}  steps  (phases · m · w)", p.total_time());
    println!(
        "  Õ      = {:.3e}  = time/(C+L);   ln⁹(LN) = {:.3e}",
        p.polylog_factor(),
        p.ln_ln.powi(9)
    );
    println!(
        "  success ≥ {:.9}  (Theorem 2.6 bound 1 − 1/LN = {:.9})",
        p.success_probability(),
        p.success_lower_bound()
    );
    0
}

fn cmd_frames(args: &[String]) -> i32 {
    let vals: Vec<u32> = args.iter().filter_map(|s| s.parse().ok()).collect();
    let [l, m, sets] = vals[..] else {
        eprintln!("usage: hotpotato frames <L> <m> <sets>");
        return 2;
    };
    if m < 3 {
        eprintln!("frames need at least 3 inner levels (got m = {m})");
        return 2;
    }
    if sets < 1 {
        eprintln!("need at least one frontier set");
        return 2;
    }
    let s = FrameSchedule::new(m, sets, l);
    for phase in 0..s.end_phase() {
        print!("phase {phase:>4}  ");
        for level in 0..=l {
            match (0..sets).find(|&i| s.contains(i, phase, level)) {
                Some(i) => print!("{}", i % 10),
                None => print!("."),
            }
        }
        println!();
    }
    println!("(all frames gone at phase {})", s.end_phase());
    0
}
