//! # Paper-to-code guide
//!
//! A section-by-section map from Busch's SPAA 2002 paper to this
//! implementation, for readers following along with the paper in hand.
//!
//! ## §1.1 Background — the model
//!
//! | paper concept | code |
//! |---|---|
//! | leveled network, depth `L` | [`leveled_net::LeveledNetwork`] (levels `0..=L`, edges between consecutive levels only, enforced by [`leveled_net::NetworkBuilder`]) |
//! | butterfly, mesh (4 ways), arrays, hypercube, trees, fat-tree, shuffle-exchange | [`leveled_net::builders`] |
//! | synchronous steps, one packet per link per direction | [`hotpotato_sim::Simulation`]: per-step slot table (`2·E` slots), staged exits |
//! | bufferless: every arriving packet leaves next step | [`hotpotato_sim::SimError::PacketRested`] — the engine *fails* a step that leaves a packet resting |
//! | many-to-one problems (≤ 1 packet per source) | [`routing_core::RoutingProblem::new`]; the relaxed many-to-many variant (reference \[7\]) is [`routing_core::RoutingProblem::new_relaxed`] |
//! | congestion `C`, dilation `D` | [`routing_core::RoutingProblem::congestion`], [`routing_core::RoutingProblem::dilation`] |
//!
//! ## §2.1 Parameters
//!
//! [`busch_router::PaperParams`] evaluates the literal formulas —
//! reconstructed from the lemmas that pin them down (the conference OCR
//! mangled the parameter block; see `DESIGN.md`):
//! `a = 2e³/ln(LN)`, `m = ln²(LN)+5`, `q = 1/(m²ln(LN))`,
//! `w = 4e·m²·ln(LN)·ln(1/p₁)+3m+1`, `p₀ = 1−1/(2LN)`,
//! `p₁ = 1/((⌈aC⌉m+L)·2⌈aC⌉m·LN²)`. Simulations use the same algorithm
//! under the tunable [`busch_router::Params`] (the paper itself calls the
//! literal constants "not really practical"; experiment `T7` quantifies
//! that).
//!
//! ## §2.2–2.3 Paths, deflections, Lemma 2.1
//!
//! * *Valid paths* — [`routing_core::Path`]: constructor-validated
//!   forward chains.
//! * *Current path* = preselected path + deviation stack —
//!   [`hotpotato_sim::SimPacket`]: a deflection pushes the undo move, a
//!   re-traversal pops it; the paper's "edge recycling" between path
//!   lists is this push/pop pair, and path-distance is the stack depth.
//! * *Safe backward deflection* (Lemma 2.1) —
//!   [`hotpotato_sim::conflict::resolve`]: winners per slot by priority,
//!   losers deflected backward onto forward-arrival edges (own edge
//!   first). The constructive content of the lemma's induction; the
//!   strict mode (`allow_fallback = false`) *panics* where the lemma
//!   would fail, and the `T3` integration tests run it clean.
//!
//! ## §2.4 Congestion and frontier sets
//!
//! [`busch_router::schedule::assign_sets`] partitions packets uniformly;
//! [`routing_core::RoutingProblem::per_set_congestion`] measures the
//! per-set congestion `C_i` (Lemma 2.2 is validated by experiment `T2`).
//!
//! ## §2.5 Phases, frontiers, target nodes
//!
//! [`busch_router::FrameSchedule`] is the deterministic geometry of
//! Figure 2: frontiers `φ_i(k) = k − i·m`, frames `[φ−m+1, φ]`, target
//! inner level `0, 0, 1, 2, …` per round, injection phase
//! `i·m + m−1 + level(source)`, end phase `⌈aC⌉·m + L`.
//!
//! ## §3 The algorithm
//!
//! [`busch_router::BuschRouter::route`] is a direct transcription:
//!
//! * **Packet injection** — the agenda admits each packet at its
//!   injection phase and retries while the first edge is busy; isolation
//!   is audited (`I_a`), not assumed.
//! * **Packet states** — [`busch_router::PacketState`]:
//!   `Normal`, `Excited` (entered with probability `q` per step, highest
//!   priority, demoted on deflection and at round ends), `Wait { edge }`
//!   (lowest priority, oscillating on the arrival edge; demoted on
//!   deflection and at phase ends).
//! * **Conflicts** — excited > normal > wait, ties uniform; losers via
//!   the Lemma 2.1 resolver.
//!
//! ## §4 Analysis — the invariants, measured
//!
//! The six invariants `I_a..I_f` become runtime checkers
//! ([`busch_router::invariants`]) with per-run violation counters in
//! [`busch_router::BuschOutcome::invariants`]. Lemma 4.10 (per-set
//! congestion never increases) is the `I_e` audit. Under scaled
//! parameters in sane regimes, every counter is zero — experiment `T3`.
//!
//! ## §4.4 / Theorem 2.6 — total time
//!
//! The schedule runs `(⌈aC⌉·m + L)` phases of `m·w` steps;
//! [`busch_router::Params::scheduled_steps`] computes it, experiment `T1`
//! sweeps `C`, `L`, `N` and confirms the linear-in-`(C+L)` shape, and
//! [`busch_router::PaperParams::success_probability`] reproduces the
//! probability bound `p(aCm+L) ≥ 1 − 1/(LN)` numerically.
//!
//! ## §5 Discussion — applications and extensions
//!
//! * *Mesh application* — [`routing_core::workloads::mesh_transpose`]
//!   builds the `C = D = Θ(n)` workload; experiment `T5` shows `Õ(n)`.
//! * *Arbitrary topologies* (the paper's closing question) — for DAGs,
//!   [`leveled_net::levelize()`] (longest-path layering + edge subdivision)
//!   plus [`routing_core::dag::DagNetwork`] let the router run verbatim
//!   on arbitrary acyclic networks.
//!
//! ## Beyond the paper
//!
//! * **Baselines** — [`baselines::GreedyRouter`],
//!   [`baselines::RandomPriorityRouter`] (reference \[11\]-style), and the buffered
//!   [`baselines::StoreForwardRouter`] (reference \[16\]-style with random ranks).
//! * **Replay auditing** — [`hotpotato_sim::replay::verify`] re-checks
//!   an entire recorded run against the hot-potato model, independently
//!   of the engine (used by the chaos/fuzzing test-suites).
//! * **Ablations** — experiments `A1`–`A5` measure each design choice:
//!   excitation `q`, round length `w`, frame height `m`, set count, safe
//!   deflections, and the injection discipline.

// This module is documentation only.
