//! Model-thread shims mirroring `std::thread`'s spawn/join surface.

use crate::rt::{self, Abort};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a spawned model thread; mirrors `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    id: usize,
    result: Arc<StdMutex<Option<std::thread::Result<T>>>>,
    rt: Arc<rt::Rt>,
}

/// Spawns a model thread. The closure runs under the scheduler: it only
/// executes while the explorer has it scheduled, and every blocking
/// operation inside it is a context-switch decision.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let parent_rt = rt::current_rt();
    let id = parent_rt.register_thread();
    let result: Arc<StdMutex<Option<std::thread::Result<T>>>> = Arc::new(StdMutex::new(None));

    let rt2 = Arc::clone(&parent_rt);
    let result2 = Arc::clone(&result);
    let os = std::thread::spawn(move || {
        rt::enter(&rt2, id);
        rt2.wait_until_active(id);
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(v) => {
                *result2.lock().expect("join result") = Some(Ok(v));
                rt2.finish(id, None);
            }
            Err(p) if p.is::<Abort>() => rt2.finish(id, None),
            Err(p) => {
                // Leave the payload with the runtime: the model as a
                // whole fails, which is stronger than a joiner seeing it.
                rt2.finish(id, Some(p));
            }
        }
    });
    parent_rt.add_os_handle(os);
    // Decision point: the child may (or may not) run before the parent
    // continues.
    parent_rt.switch(None);
    JoinHandle {
        id,
        result,
        rt: parent_rt,
    }
}

impl<T> JoinHandle<T> {
    /// Blocks until the thread finishes; mirrors `std`'s join contract
    /// (`Err` when the thread panicked).
    pub fn join(self) -> std::thread::Result<T> {
        loop {
            if let Some(r) = self.result.lock().expect("join result").take() {
                return r;
            }
            if self.rt.is_finished(self.id) {
                // Finished with no stored result: the thread panicked
                // (the payload went to the runtime and fails the model).
                return Err(Box::new("loom: joined thread panicked".to_string()));
            }
            self.rt.switch(Some(rt::join_key(self.id)));
        }
    }
}

/// Yields: a pure context-switch decision point.
pub fn yield_now() {
    rt::current_rt().switch(None);
}
