//! Offline workalike of the `loom` model checker (API subset).
//!
//! [`model`] runs a closure many times, once per distinct thread
//! schedule, until the schedule tree is exhausted (or capped). Inside
//! the closure, use this crate's [`thread`] and [`sync`] shims instead
//! of `std`'s: every lock acquisition, condvar wait/notify, channel
//! operation, spawn and join becomes a context-switch decision the
//! explorer owns. Assertions that hold across *every* explored
//! interleaving — and freedom from deadlock, which is detected and
//! reported — are what a passing model buys you.
//!
//! How it differs from the real loom, deliberately:
//!
//! * exploration is over *scheduling* decisions at blocking operations,
//!   not individual atomic accesses — no C11 memory-model simulation.
//!   Code whose correctness hinges on `Relaxed`-ordering subtleties
//!   needs the real tool; lock/channel protocols like the sweep worker
//!   pool are exactly what this handles;
//! * model threads are real OS threads run one-at-a-time by a
//!   scheduler, so any std-compatible code runs unmodified;
//! * exploration is bounded: a preemption budget
//!   (`LOOM_MAX_PREEMPTIONS`, default 2 — the CHESS result: most
//!   concurrency bugs need few preemptions), an execution cap
//!   (`LOOM_MAX_ITERATIONS`, default 10000) and a per-execution branch
//!   cap (`LOOM_MAX_BRANCHES`, default 5000).
//!
//! The workspace gates its use behind `--cfg loom`, matching real-loom
//! convention: `RUSTFLAGS="--cfg loom" cargo test -p bench --test
//! loom_pool`.

mod rt;
pub mod sync;
pub mod thread;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Explores every bounded schedule of `f`, panicking on the first
/// schedule where `f` panics or deadlocks.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::new().check(f);
}

/// Exploration knobs; [`Builder::new`] reads the `LOOM_*` environment.
pub struct Builder {
    /// Max context switches away from a still-runnable thread per
    /// execution (CHESS-style preemption bounding).
    pub preemption_bound: usize,
    /// Max executions before exploration stops with a warning.
    pub max_iterations: usize,
    /// Max scheduling decisions within one execution (livelock guard).
    pub max_branches: usize,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

impl Builder {
    /// Default bounds, overridable via `LOOM_MAX_PREEMPTIONS`,
    /// `LOOM_MAX_ITERATIONS` and `LOOM_MAX_BRANCHES`.
    pub fn new() -> Self {
        Builder {
            preemption_bound: env_usize("LOOM_MAX_PREEMPTIONS", 2),
            max_iterations: env_usize("LOOM_MAX_ITERATIONS", 10_000),
            max_branches: env_usize("LOOM_MAX_BRANCHES", 5_000),
        }
    }

    /// Runs the exploration loop: execute, harvest the recorded
    /// schedule, flip the deepest unexplored decision, repeat.
    pub fn check<F>(&self, f: F)
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f = Arc::new(f);
        let mut replay: Vec<usize> = Vec::new();
        let mut iterations = 0usize;
        loop {
            iterations += 1;
            let rt = Arc::new(rt::Rt::new(
                replay.clone(),
                self.preemption_bound,
                self.max_branches,
            ));
            let main_id = rt.register_thread();
            let rt2 = Arc::clone(&rt);
            let f2 = Arc::clone(&f);
            let os = std::thread::spawn(move || {
                rt::enter(&rt2, main_id);
                rt2.wait_until_active(main_id);
                match catch_unwind(AssertUnwindSafe(|| f2())) {
                    Ok(()) => rt2.finish(main_id, None),
                    Err(p) if p.is::<rt::Abort>() => rt2.finish(main_id, None),
                    Err(p) => rt2.finish(main_id, Some(p)),
                }
            });
            rt.add_os_handle(os);

            let (failure, panic, schedule) = rt.wait_done();
            rt.join_os_threads();
            if let Some(p) = panic {
                eprintln!("loom: model panicked on execution {iterations}");
                std::panic::resume_unwind(p);
            }
            if let Some(msg) = failure {
                panic!("loom: model failed on execution {iterations}: {msg}");
            }
            match rt::next_replay(&schedule) {
                None => break,
                Some(next) => {
                    if iterations >= self.max_iterations {
                        eprintln!("loom: exploration capped at {iterations} executions");
                        break;
                    }
                    replay = next;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::{mpsc, Arc, Condvar, Mutex};
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn mutex_counter_survives_every_interleaving() {
        model(|| {
            let n = Arc::new(Mutex::new(0usize));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    thread::spawn(move || {
                        *n.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*n.lock().unwrap(), 2);
        });
    }

    #[test]
    fn exploration_reaches_multiple_orders() {
        let seen: std::sync::Arc<StdMutex<HashSet<Vec<u8>>>> = Default::default();
        let seen2 = std::sync::Arc::clone(&seen);
        model(move || {
            let order = Arc::new(Mutex::new(Vec::new()));
            let handles: Vec<_> = (1..=2u8)
                .map(|id| {
                    let order = Arc::clone(&order);
                    thread::spawn(move || {
                        order.lock().unwrap().push(id);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            let fin = order.lock().unwrap().clone();
            seen2.lock().unwrap().insert(fin);
        });
        let seen = seen.lock().unwrap();
        assert!(
            seen.contains(&vec![1, 2]) && seen.contains(&vec![2, 1]),
            "both arrival orders must be explored, saw {seen:?}"
        );
    }

    #[test]
    fn self_deadlock_is_detected() {
        let r = std::panic::catch_unwind(|| {
            model(|| {
                let m = Mutex::new(());
                let _a = m.lock().unwrap();
                let _b = m.lock().unwrap(); // non-reentrant: blocks forever
            });
        });
        let msg = *r
            .expect_err("model must fail")
            .downcast::<String>()
            .expect("panic message");
        assert!(msg.contains("deadlock"), "{msg}");
    }

    #[test]
    fn model_panics_propagate() {
        let r = std::panic::catch_unwind(|| {
            model(|| {
                let t = thread::spawn(|| panic!("boom from a model thread"));
                let _ = t.join();
            });
        });
        assert!(r.is_err());
    }

    #[test]
    fn channel_delivers_in_order_then_disconnects() {
        model(|| {
            let (tx, rx) = mpsc::channel();
            let t = thread::spawn(move || {
                tx.send(1).unwrap();
                tx.send(2).unwrap();
            });
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            t.join().unwrap();
            assert_eq!(rx.recv(), Err(mpsc::RecvError));
        });
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        model(|| {
            let (tx, rx) = mpsc::channel();
            drop(rx);
            assert_eq!(tx.send(7), Err(mpsc::SendError(7)));
        });
    }

    #[test]
    fn condvar_wakeups_are_never_lost() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (flag, cv) = &*p2;
                *flag.lock().unwrap() = true;
                cv.notify_one();
            });
            let (flag, cv) = &*pair;
            let mut ready = flag.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
            drop(ready);
            t.join().unwrap();
        });
    }

    #[test]
    fn join_returns_the_thread_value() {
        model(|| {
            let t = thread::spawn(|| 41 + 1);
            assert_eq!(t.join().unwrap(), 42);
        });
    }

    #[test]
    fn yield_now_is_a_plain_decision_point() {
        model(|| {
            let t = thread::spawn(thread::yield_now);
            thread::yield_now();
            t.join().unwrap();
        });
    }
}
