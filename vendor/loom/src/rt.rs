//! The execution core: one OS thread per model thread, exactly one
//! allowed to run at a time, and a DFS over which thread runs next.
//!
//! Every blocking primitive funnels into [`Rt::switch`], the single
//! context-switch point. A switch consults the current execution's
//! replay prefix (re-running the decisions of a previous execution up to
//! the branch being flipped) and otherwise picks the first runnable
//! thread, recording how many alternatives existed. After an execution
//! finishes, [`next_replay`] flips the deepest decision that still has
//! an unexplored alternative — classic depth-first exploration of the
//! schedule tree, bounded by a preemption budget (CHESS-style) and a
//! branch cap so pathological models terminate.

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// Sentinel for "no thread is scheduled" (all finished, or aborted).
const NOBODY: usize = usize::MAX;

/// Panic payload used to unwind model threads when an execution aborts
/// (deadlock, branch cap). Recognized — and swallowed — by the thread
/// shims, so it never masks a genuine model panic.
pub(crate) struct Abort;

/// One scheduling decision: index chosen among the runnable candidates,
/// and how many candidates there were.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Choice {
    /// Index into the sorted runnable set that was taken.
    pub chosen: usize,
    /// Size of the runnable set at this decision.
    pub alternatives: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Run {
    Runnable,
    /// Parked until [`Rt::unpark_all`]/[`Rt::unpark_one`] on this key.
    Blocked(usize),
    Finished,
}

struct State {
    threads: Vec<Run>,
    active: usize,
    /// `(key, thread)` in park order — `unpark_one` wakes FIFO.
    parked: Vec<(usize, usize)>,
    schedule: Vec<Choice>,
    replay: Vec<usize>,
    step: usize,
    preemptions: usize,
    aborted: Option<String>,
    panic: Option<Box<dyn Any + Send>>,
}

/// Runtime for one execution (one deterministic schedule).
pub(crate) struct Rt {
    state: StdMutex<State>,
    cv: StdCondvar,
    preemption_bound: usize,
    max_branches: usize,
    os_handles: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

thread_local! {
    static CURRENT: RefCell<Option<Arc<Rt>>> = const { RefCell::new(None) };
    static TID: Cell<usize> = const { Cell::new(NOBODY) };
}

/// The runtime of the execution this thread belongs to.
pub(crate) fn current_rt() -> Arc<Rt> {
    CURRENT
        .with(|c| c.borrow().clone())
        .expect("loom primitive used outside loom::model")
}

/// Binds this OS thread to `rt` as model thread `tid`.
pub(crate) fn enter(rt: &Arc<Rt>, tid: usize) {
    CURRENT.with(|c| *c.borrow_mut() = Some(Arc::clone(rt)));
    TID.with(|t| t.set(tid));
}

fn current_tid() -> usize {
    let tid = TID.with(Cell::get);
    assert!(tid != NOBODY, "loom primitive used outside loom::model");
    tid
}

/// The park key joiners of model thread `id` wait on. Top bit set so it
/// cannot collide with the address-derived keys of sync primitives.
pub(crate) fn join_key(id: usize) -> usize {
    (1usize << (usize::BITS - 1)) | id
}

impl Rt {
    pub(crate) fn new(replay: Vec<usize>, preemption_bound: usize, max_branches: usize) -> Self {
        Rt {
            state: StdMutex::new(State {
                threads: Vec::new(),
                active: 0,
                parked: Vec::new(),
                schedule: Vec::new(),
                replay,
                step: 0,
                preemptions: 0,
                aborted: None,
                panic: None,
            }),
            cv: StdCondvar::new(),
            preemption_bound,
            max_branches,
            os_handles: StdMutex::new(Vec::new()),
        }
    }

    /// Registers a new runnable model thread, returning its id.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().expect("rt state");
        st.threads.push(Run::Runnable);
        st.threads.len() - 1
    }

    /// Records the OS handle backing a model thread so the execution can
    /// join every OS thread before the next execution starts.
    pub(crate) fn add_os_handle(&self, h: std::thread::JoinHandle<()>) {
        self.os_handles.lock().expect("os handles").push(h);
    }

    /// Whether model thread `id` has finished.
    pub(crate) fn is_finished(&self, id: usize) -> bool {
        self.state.lock().expect("rt state").threads[id] == Run::Finished
    }

    /// Blocks the calling OS thread until its model thread is scheduled.
    pub(crate) fn wait_until_active(&self, me: usize) {
        let mut st = self.state.lock().expect("rt state");
        loop {
            if st.aborted.is_some() {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == me {
                return;
            }
            st = self.cv.wait(st).expect("rt state");
        }
    }

    /// The context-switch point. `block_on: Some(key)` parks the caller
    /// on `key` (a later unpark makes it runnable again); `None` is a
    /// plain yield where the caller stays runnable. Either way the
    /// scheduler decides who runs next, recording the decision.
    ///
    /// No-op while the calling thread is unwinding, so guard `Drop`
    /// impls can release state without risking a double panic.
    pub(crate) fn switch(&self, block_on: Option<usize>) {
        if std::thread::panicking() {
            return;
        }
        let me = current_tid();
        let mut st = self.state.lock().expect("rt state");
        if st.aborted.is_some() {
            drop(st);
            std::panic::panic_any(Abort);
        }
        if let Some(key) = block_on {
            st.threads[me] = Run::Blocked(key);
            st.parked.push((key, me));
        }
        let Some(next) = self.pick_next(&mut st, me) else {
            drop(st);
            std::panic::panic_any(Abort);
        };
        if next == me {
            return;
        }
        st.active = next;
        self.cv.notify_all();
        loop {
            if st.aborted.is_some() {
                drop(st);
                std::panic::panic_any(Abort);
            }
            if st.active == me && st.threads[me] == Run::Runnable {
                return;
            }
            st = self.cv.wait(st).expect("rt state");
        }
    }

    /// Makes every thread parked on `key` runnable (does not schedule).
    pub(crate) fn unpark_all(&self, key: usize) {
        let mut st = self.state.lock().expect("rt state");
        Self::unpark(&mut st, key, usize::MAX);
    }

    /// Makes the earliest-parked thread on `key` runnable (FIFO).
    pub(crate) fn unpark_one(&self, key: usize) {
        let mut st = self.state.lock().expect("rt state");
        Self::unpark(&mut st, key, 1);
    }

    fn unpark(st: &mut State, key: usize, limit: usize) {
        let mut woken = 0;
        let mut i = 0;
        while i < st.parked.len() && woken < limit {
            if st.parked[i].0 == key {
                let tid = st.parked.remove(i).1;
                st.threads[tid] = Run::Runnable;
                woken += 1;
            } else {
                i += 1;
            }
        }
    }

    /// Marks `me` finished, wakes its joiners, surfaces `panic` (a
    /// genuine model panic fails the whole model), and schedules a
    /// successor — or flags a deadlock if nothing is runnable while
    /// threads remain.
    pub(crate) fn finish(&self, me: usize, panic: Option<Box<dyn Any + Send>>) {
        let mut st = self.state.lock().expect("rt state");
        st.threads[me] = Run::Finished;
        Self::unpark(&mut st, join_key(me), usize::MAX);
        if let Some(p) = panic {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
            if st.aborted.is_none() {
                Self::abort(&mut st, "a model thread panicked");
            }
            self.cv.notify_all();
            return;
        }
        if st.aborted.is_some() || st.threads.iter().all(|t| *t == Run::Finished) {
            st.active = NOBODY;
            self.cv.notify_all();
            return;
        }
        if let Some(next) = self.pick_next(&mut st, me) {
            st.active = next;
        }
        self.cv.notify_all();
    }

    /// Picks the next thread to run, honoring the replay prefix and the
    /// preemption bound, and records the decision. `None` means the
    /// execution just aborted (deadlock or branch cap).
    fn pick_next(&self, st: &mut State, me: usize) -> Option<usize> {
        if st.schedule.len() >= self.max_branches {
            Self::abort(st, "schedule exceeded the branch cap (possible livelock)");
            self.cv.notify_all();
            return None;
        }
        let mut cands: Vec<usize> = (0..st.threads.len())
            .filter(|&i| st.threads[i] == Run::Runnable)
            .collect();
        if cands.is_empty() {
            Self::abort(st, "deadlock: every unfinished thread is blocked");
            self.cv.notify_all();
            return None;
        }
        let me_runnable = st.threads.get(me) == Some(&Run::Runnable);
        if me_runnable && st.preemptions >= self.preemption_bound {
            // Out of preemption budget: the running thread must continue.
            cands = vec![me];
        }
        let idx = if st.step < st.replay.len() {
            st.replay[st.step]
        } else {
            0
        };
        assert!(
            idx < cands.len(),
            "loom: schedule replay diverged (model is nondeterministic)"
        );
        st.schedule.push(Choice {
            chosen: idx,
            alternatives: cands.len(),
        });
        st.step += 1;
        let next = cands[idx];
        if me_runnable && next != me {
            st.preemptions += 1;
        }
        Some(next)
    }

    fn abort(st: &mut State, why: &str) {
        st.aborted = Some(why.to_string());
        // Unpark everything so blocked threads wake, observe the abort,
        // and unwind; `switch` panics them with `Abort`.
        for t in &mut st.threads {
            if matches!(t, Run::Blocked(_)) {
                *t = Run::Runnable;
            }
        }
        st.parked.clear();
        st.active = NOBODY;
    }

    /// Blocks the *caller* thread (outside the model) until every model
    /// thread has finished, then returns the execution's verdict:
    /// `(abort reason, first model panic, recorded schedule)`.
    pub(crate) fn wait_done(&self) -> (Option<String>, Option<Box<dyn Any + Send>>, Vec<Choice>) {
        let mut st = self.state.lock().expect("rt state");
        while !st.threads.iter().all(|t| *t == Run::Finished) {
            st = self.cv.wait(st).expect("rt state");
        }
        (
            st.aborted.take(),
            st.panic.take(),
            std::mem::take(&mut st.schedule),
        )
    }

    /// Joins every OS thread this execution spawned.
    pub(crate) fn join_os_threads(&self) {
        for h in self.os_handles.lock().expect("os handles").drain(..) {
            let _ = h.join();
        }
    }
}

/// The replay prefix for the next unexplored execution: flip the deepest
/// decision that still has an alternative; `None` when the tree is
/// exhausted.
pub(crate) fn next_replay(schedule: &[Choice]) -> Option<Vec<usize>> {
    let mut replay: Vec<usize> = schedule.iter().map(|c| c.chosen).collect();
    while let Some(last) = replay.pop() {
        if last + 1 < schedule[replay.len()].alternatives {
            replay.push(last + 1);
            return Some(replay);
        }
    }
    None
}
