//! Scheduler-aware `Mutex`, `Condvar` and `mpsc` with std-compatible
//! signatures.
//!
//! Data lives in ordinary std primitives (never contended: the scheduler
//! runs one model thread at a time); what these types add is the model
//! state — a held flag, park keys derived from the primitive's address —
//! so lock handoffs, waits and notifies become explorable context-switch
//! decisions. Locks never poison: `lock`/`wait` always return `Ok`, the
//! same observable behavior std gives code that never panics while
//! holding a guard.

pub use std::sync::Arc;

use crate::rt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{LockResult, Mutex as StdMutex, TryLockError, TryLockResult};

/// Mutual exclusion with explorable lock handoffs.
pub struct Mutex<T> {
    data: StdMutex<T>,
    held: AtomicBool,
}

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(t: T) -> Self {
        Mutex {
            data: StdMutex::new(t),
            held: AtomicBool::new(false),
        }
    }

    fn key(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquires the lock; a context-switch decision precedes the
    /// acquisition attempt and contention parks the caller.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        let rt = rt::current_rt();
        rt.switch(None);
        while self.held.swap(true, Ordering::SeqCst) {
            rt.switch(Some(self.key()));
        }
        Ok(MutexGuard {
            lock: self,
            inner: Some(match self.data.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }),
        })
    }

    /// Attempts the lock without blocking; a context-switch decision
    /// precedes the attempt (so the scheduler can interleave a competing
    /// holder first), and contention reports `WouldBlock` instead of
    /// parking — mirroring `std::sync::Mutex::try_lock`.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        let rt = rt::current_rt();
        rt.switch(None);
        if self.held.swap(true, Ordering::SeqCst) {
            return Err(TryLockError::WouldBlock);
        }
        Ok(MutexGuard {
            lock: self,
            inner: Some(match self.data.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            }),
        })
    }
}

/// RAII guard; mirrors `std::sync::MutexGuard`.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> MutexGuard<'_, T> {
    /// Releases the lock without a reschedule decision — used by
    /// `Condvar::wait`, which must park on the condvar *before* any
    /// other thread can run, or a wakeup could be lost.
    fn release_for_wait(&mut self) {
        drop(self.inner.take());
        self.lock.held.store(false, Ordering::SeqCst);
        rt::current_rt().unpark_all(self.lock.key());
    }

    fn reacquire(&mut self) {
        let rt = rt::current_rt();
        while self.lock.held.swap(true, Ordering::SeqCst) {
            rt.switch(Some(self.lock.key()));
        }
        self.inner = Some(match self.lock.data.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.is_none() {
            return; // released by Condvar::wait and never reacquired
        }
        drop(self.inner.take());
        self.lock.held.store(false, Ordering::SeqCst);
        let rt = rt::current_rt();
        rt.unpark_all(self.lock.key());
        // Give a waiter the chance to grab the lock first (no-op while
        // unwinding, so teardown cannot double panic).
        rt.switch(None);
    }
}

/// Condition variable with explorable wait/notify interleavings.
pub struct Condvar {
    // Address-keyed like Mutex; the field keeps the type non-zero-sized
    // so two condvars in one struct get distinct park keys.
    _pad: u8,
}

impl Condvar {
    /// Creates a new condition variable.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Condvar { _pad: 0 }
    }

    fn key(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Atomically releases the guard's lock and parks until notified,
    /// then reacquires; mirrors `std::sync::Condvar::wait`.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let rt = rt::current_rt();
        guard.release_for_wait();
        rt.switch(Some(self.key()));
        guard.reacquire();
        Ok(guard)
    }

    /// Wakes the earliest parked waiter (FIFO), if any.
    pub fn notify_one(&self) {
        let rt = rt::current_rt();
        rt.unpark_one(self.key());
        rt.switch(None);
    }

    /// Wakes every parked waiter.
    pub fn notify_all(&self) {
        let rt = rt::current_rt();
        rt.unpark_all(self.key());
        rt.switch(None);
    }
}

/// Multi-producer single-consumer channel built on the scheduler-aware
/// `Mutex`/`Condvar`, mirroring the `std::sync::mpsc` subset the
/// workspace uses.
pub mod mpsc {
    use super::{Arc, Condvar, Mutex};
    use std::collections::VecDeque;
    use std::fmt;

    /// Receive on a channel whose senders are all gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Send on a channel whose receiver is gone; returns the value.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Unconditional like std's: the payload may not be Debug.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    struct ChanState<T> {
        queue: VecDeque<T>,
        senders: usize,
        receiver_alive: bool,
    }

    struct Chan<T> {
        state: Mutex<ChanState<T>>,
        cv: Condvar,
    }

    /// Sending half; clonable.
    pub struct Sender<T> {
        chan: Arc<Chan<T>>,
    }

    /// Receiving half.
    pub struct Receiver<T> {
        chan: Arc<Chan<T>>,
    }

    /// Creates an unbounded channel.
    pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            state: Mutex::new(ChanState {
                queue: VecDeque::new(),
                senders: 1,
                receiver_alive: true,
            }),
            cv: Condvar::new(),
        });
        (
            Sender {
                chan: Arc::clone(&chan),
            },
            Receiver { chan },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value; fails (returning it) if the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            {
                let mut st = self.chan.state.lock().expect("channel state");
                if !st.receiver_alive {
                    return Err(SendError(t));
                }
                st.queue.push_back(t);
            }
            self.chan.cv.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.chan.state.lock().expect("channel state").senders += 1;
            Sender {
                chan: Arc::clone(&self.chan),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let last = {
                let mut st = self.chan.state.lock().expect("channel state");
                st.senders -= 1;
                st.senders == 0
            };
            if last {
                // Wake a blocked receiver so it can observe disconnection.
                self.chan.cv.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Dequeues, blocking while the channel is empty; errs once it is
        /// empty *and* every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.chan.state.lock().expect("channel state");
            loop {
                if let Some(v) = st.queue.pop_front() {
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.chan.cv.wait(st).expect("channel state");
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.chan
                .state
                .lock()
                .expect("channel state")
                .receiver_alive = false;
        }
    }
}
