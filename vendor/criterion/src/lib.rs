//! Offline vendored stand-in for the Criterion benchmark harness.
//!
//! Upstream Criterion is unreachable in this build environment, so this
//! crate exposes the same API surface the workspace's benches use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`criterion_group!`], [`criterion_main!`] —
//! backed by a simple timer: each benchmark warms up once, then runs until
//! a small per-bench time budget or the configured sample count is
//! reached, and reports mean wall time per iteration. No statistics,
//! plots, or baselines; the numbers are indicative, and the harness keeps
//! `cargo test`/`cargo bench` runs fast.

use std::time::{Duration, Instant};

/// Per-benchmark measurement budget (after one warm-up iteration).
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Defeats constant-folding around a benchmarked value.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortizes setup; all sizes behave identically here
/// (setup runs once per iteration and is excluded from timing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Times one benchmark routine.
pub struct Bencher {
    max_iters: u64,
    /// (total measured time, iterations) recorded by the last `iter*` call.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Runs `routine` repeatedly, timing every call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while iters < self.max_iters && total < TIME_BUDGET {
            let start = Instant::now();
            black_box(routine());
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters));
    }

    /// Runs `routine` on fresh inputs from `setup`, timing only `routine`.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warm-up, untimed
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while iters < self.max_iters && total < TIME_BUDGET {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
        }
        self.result = Some((total, iters));
    }
}

fn run_one(group: Option<&str>, id: &str, sample_size: u64, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        max_iters: sample_size.max(1),
        result: None,
    };
    f(&mut b);
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    match b.result {
        Some((total, iters)) if iters > 0 => {
            let per = total.as_nanos() / iters as u128;
            println!("bench {label:<40} {per:>12} ns/iter ({iters} iters)");
        }
        _ => println!("bench {label:<40} (no measurement)"),
    }
}

/// The harness: owns configuration and runs benchmarks.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 100 }
    }
}

impl Criterion {
    /// Sets the target iteration count per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(None, &id.into(), self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        run_one(
            Some(&self.name),
            &id.into(),
            self.criterion.sample_size,
            &mut f,
        );
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        #[allow(missing_docs)]
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_and_counts() {
        let mut c = Criterion::default().sample_size(5);
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("unit");
            g.bench_function("count", |b| {
                b.iter(|| {
                    calls += 1;
                    black_box(calls)
                })
            });
            g.finish();
        }
        // Warm-up plus at most sample_size timed iterations.
        assert!((2..=6).contains(&calls), "calls = {calls}");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default().sample_size(3);
        let mut setups = 0u64;
        let mut runs = 0u64;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![0u8; 8]
                },
                |v| {
                    runs += 1;
                    v.len()
                },
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, runs);
        assert!((2..=4).contains(&runs), "runs = {runs}");
    }
}
