//! Offline vendored `serde_json` workalike: printing, a strict JSON
//! parser, [`to_value`], and the [`json!`] macro, all over the vendored
//! [`serde::Value`] tree. Only the API surface this workspace uses is
//! provided.

use std::fmt;

pub use serde::{Number, Value};

/// A JSON error (parsing or serialization).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_json())
}

/// Renders compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_compact_string())
}

/// Renders two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_json().to_pretty_string())
}

/// Parses a JSON document; trailing non-whitespace is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

/// Recursive-descent JSON parser over the input bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::new(format!(
                "unexpected '{}' at offset {}",
                b as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a valid &str).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        let num = if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                Number::U(u)
            } else if let Ok(i) = text.parse::<i64>() {
                Number::I(i)
            } else {
                Number::F(
                    text.parse::<f64>()
                        .map_err(|_| Error::new(format!("invalid number '{text}'")))?,
                )
            }
        } else {
            Number::F(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number '{text}'")))?,
            )
        };
        Ok(Value::Number(num))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected ',' or ']' at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(members));
                }
                _ => return Err(Error::new(format!("expected ',' or '}}' at {}", self.pos))),
            }
        }
    }
}

/// Builds a [`Value`] from a JSON-shaped literal. Object values and array
/// elements may be arbitrary serializable expressions; object keys are
/// string literals.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $( $elem:expr ),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $( $key:literal : $value:expr ),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::json!($value)) ),*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible")
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_documents() {
        let doc = json!({
            "algorithm": "busch",
            "n": 12,
            "ok": true,
            "ratio": 1.5,
            "steps": [1, 2, 3],
            "none": json!(null),
        });
        let text = to_string_pretty(&doc).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(doc, back);
        assert_eq!(back["algorithm"], "busch");
        assert_eq!(back["n"].as_u64(), Some(12));
        assert_eq!(back["steps"].as_array().unwrap().len(), 3);
        assert!(back["none"].is_null());
    }

    #[test]
    fn parses_escapes_and_nesting() {
        let doc = from_str(r#"{"a": [{"b": "x\ny"}], "c": -4, "d": 2.5e2}"#).unwrap();
        assert_eq!(doc["a"][0]["b"], "x\ny");
        assert_eq!(doc["c"].as_i64(), Some(-4));
        assert_eq!(doc["d"].as_f64(), Some(250.0));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("{} extra").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn json_macro_splices_serializable_expressions() {
        let xs = vec![1u32, 2, 3];
        let name = String::from("bf12");
        let doc = json!({ "xs": xs, "name": name, "opt": Some(7u64) });
        assert_eq!(doc["xs"].as_array().unwrap().len(), 3);
        assert_eq!(doc["name"], "bf12");
        assert_eq!(doc["opt"].as_u64(), Some(7));
    }

    #[test]
    fn compact_and_pretty_agree() {
        let doc = json!({ "k": json!([true, json!(null)]), "m": json!({}) });
        assert_eq!(from_str(&to_string(&doc).unwrap()).unwrap(), doc);
        assert_eq!(from_str(&to_string_pretty(&doc).unwrap()).unwrap(), doc);
    }
}
