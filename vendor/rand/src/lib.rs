//! Offline workalike of the `rand` 0.8 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually calls: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`] (including
//! the PCG-based `seed_from_u64` expansion), and
//! [`seq::SliceRandom`] (`choose`, `shuffle`).
//!
//! Streams are *not* bit-compatible with upstream `rand`; nothing in the
//! workspace pins historical values, only determinism for a fixed seed,
//! which this crate provides.

pub mod seq;

/// The core of a random number generator: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&last[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A seedable generator, with the convenience `seed_from_u64` expansion.
pub trait SeedableRng: Sized {
    /// The fixed-size seed.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with a splittable PCG stream (the
    /// same construction `rand_core` uses) and seeds the generator.
    fn seed_from_u64(state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Uniform sample of `T` from its "natural" full range (`gen`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53-bit precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24-bit precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u32() >> 8) as f32) * (1.0 / (1u32 << 24) as f32)
    }
}

/// Unbiased uniform draw from `[0, n)` by rejection of the short residue
/// class (the accepted span is a contiguous multiple of `n`).
#[inline]
pub(crate) fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n >= 1);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    // 2^64 mod n values at the bottom would bias `% n`; reroll them.
    let reject_below = n.wrapping_neg() % n;
    loop {
        let v = rng.next_u64();
        if v >= reject_below {
            return v % n;
        }
    }
}

/// Integer types `gen_range` can draw uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// `high - low` as a width (caller guarantees `low <= high`).
    fn span(low: Self, high: Self) -> u64;

    /// `low + offset` (offset fits by construction).
    fn offset(low: Self, offset: u64) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn span(low: Self, high: Self) -> u64 {
                (high as $wide).wrapping_sub(low as $wide) as u64
            }

            #[inline]
            fn offset(low: Self, offset: u64) -> Self {
                ((low as $wide).wrapping_add(offset as $wide)) as $t
            }
        }
    )*};
}

impl_sample_uniform!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

/// Ranges `gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value; panics on an empty range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = T::span(self.start, self.end);
        T::offset(self.start, uniform_below(rng, span))
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        let span = T::span(start, end);
        if span == u64::MAX {
            // Full-width range: every output is in range.
            return T::offset(start, rng.next_u64());
        }
        T::offset(start, uniform_below(rng, span + 1))
    }
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of `T` from its natural distribution (full integer
    /// range, `[0, 1)` for floats, fair coin for `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`; panics unless `0 <= p <= 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is not a probability");
        if p >= 1.0 {
            return true;
        }
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    /// splitmix64: a tiny seedable test generator.
    struct SplitMix(u64);

    impl RngCore for SplitMix {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SplitMix(1);
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let u: u32 = rng.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_range_hits_every_value() {
        let mut rng = SplitMix(2);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_edges_and_rate() {
        let mut rng = SplitMix(3);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4_000..6_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn f64_samples_are_unit_interval() {
        let mut rng = SplitMix(4);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean={mean}");
    }

    #[test]
    fn unsized_rng_borrows_work() {
        // The workspace routinely passes `&mut R` where `R: Rng + ?Sized`.
        fn takes_dyn(rng: &mut dyn RngCore) -> u64 {
            rng.gen_range(0..10u64)
        }
        let mut rng = SplitMix(5);
        assert!(takes_dyn(&mut rng) < 10);
    }
}
