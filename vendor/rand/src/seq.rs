//! Slice sampling helpers: `choose` and Fisher–Yates `shuffle`.

use crate::{uniform_below, Rng};

/// Random selection and reordering on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Uniform in-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            self.get(uniform_below(rng, self.len() as u64) as usize)
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, uniform_below(rng, i as u64 + 1) as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RngCore;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            self.0
        }
    }

    #[test]
    fn choose_on_empty_is_none() {
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut Counter(1)).is_none());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(7);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(
            v, sorted,
            "100 elements virtually never shuffle to identity"
        );
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(3);
        let items = [1u8, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..500 {
            seen[(*items.choose(&mut rng).unwrap() - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
