//! A real ChaCha8 stream cipher used as a deterministic RNG, implementing
//! the vendored [`rand`] traits. Offline stand-in for the `rand_chacha`
//! crate; the keystream is standard ChaCha (RFC 8439 block function with 8
//! rounds), though word-consumption order is not guaranteed to match
//! upstream `rand_chacha` — the workspace only relies on determinism.

use rand::{RngCore, SeedableRng};

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;

/// Deterministic generator backed by the ChaCha stream cipher with 8
/// rounds, keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// The current keystream block.
    buf: [u32; BLOCK_WORDS],
    /// Next unconsumed word of `buf` (`BLOCK_WORDS` = exhausted).
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the next keystream block and advances the 64-bit counter.
    fn refill(&mut self) {
        let mut work = self.state;
        // 8 rounds = 4 double rounds of column + diagonal quarter-rounds.
        for _ in 0..4 {
            quarter_round(&mut work, 0, 4, 8, 12);
            quarter_round(&mut work, 1, 5, 9, 13);
            quarter_round(&mut work, 2, 6, 10, 14);
            quarter_round(&mut work, 3, 7, 11, 15);
            quarter_round(&mut work, 0, 5, 10, 15);
            quarter_round(&mut work, 1, 6, 11, 12);
            quarter_round(&mut work, 2, 7, 8, 13);
            quarter_round(&mut work, 3, 4, 9, 14);
        }
        for (out, (w, s)) in self.buf.iter_mut().zip(work.iter().zip(&self.state)) {
            *out = w.wrapping_add(*s);
        }
        self.idx = 0;
        // 64-bit block counter in words 12..14.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k", the standard ChaCha constants.
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (words 12, 13) and nonce (words 14, 15) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; BLOCK_WORDS],
            idx: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx == BLOCK_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} of 64 words collided");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_key_block_is_not_degenerate() {
        // The keystream must not echo the state or produce all-zero words.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert_ne!(words[0], 0x6170_7865);
    }

    #[test]
    fn counter_carries_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Consume several blocks; outputs must keep changing block to block.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect: Vec<u8> = (0..2).flat_map(|_| b.next_u64().to_le_bytes()).collect();
        assert_eq!(&buf[..], &expect[..]);
    }
}
