//! A real ChaCha8 stream cipher used as a deterministic RNG, implementing
//! the vendored [`rand`] traits. Offline stand-in for the `rand_chacha`
//! crate; the keystream is standard ChaCha (RFC 8439 block function with 8
//! rounds), though word-consumption order is not guaranteed to match
//! upstream `rand_chacha` — the workspace only relies on determinism.
//!
//! The generator computes [`LANES`] consecutive blocks per refill,
//! carrying the counters through the rounds side by side in
//! `[u32; LANES]` lanes. The lane loops compile to wide vector ops, so
//! a refill costs little more than a single scalar block while the
//! emitted keystream — block `ctr`, then `ctr+1`, … — is word-for-word
//! the stream the one-block-at-a-time implementation produced.

use rand::{RngCore, SeedableRng};

/// Words per ChaCha block.
const BLOCK_WORDS: usize = 16;

/// Blocks computed per refill (the lane width of the batched rounds).
/// Sixteen lanes let the quarter-round loops compile to the widest
/// vector ops the target offers (one zmm or two ymm per lane array);
/// the emitted keystream is identical at any width.
const LANES: usize = 16;

/// Words buffered per refill.
const BUF_WORDS: usize = LANES * BLOCK_WORDS;

/// Deterministic generator backed by the ChaCha stream cipher with 8
/// rounds, keyed by a 32-byte seed.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The cipher input block: constants, key, counter, nonce.
    state: [u32; BLOCK_WORDS],
    /// The buffered keystream: [`LANES`] consecutive blocks.
    buf: [u32; BUF_WORDS],
    /// Next unconsumed word of `buf` (`BUF_WORDS` = exhausted).
    idx: usize,
}

// Index loops keep the lane arrays in the flat shape the
// auto-vectorizer matches; zip-based rewrites here have cost lanes.
#[allow(clippy::needless_range_loop)]
#[inline(always)]
fn quarter_round(s: &mut [[u32; LANES]; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    // The lane iterations are independent, so this loop compiles to
    // wide vector adds, xors, and rotates.
    for l in 0..LANES {
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(16);
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(12);
        s[a][l] = s[a][l].wrapping_add(s[b][l]);
        s[d][l] = (s[d][l] ^ s[a][l]).rotate_left(8);
        s[c][l] = s[c][l].wrapping_add(s[d][l]);
        s[b][l] = (s[b][l] ^ s[c][l]).rotate_left(7);
    }
}

impl ChaCha8Rng {
    /// Generates the next [`LANES`] keystream blocks and advances the
    /// 64-bit counter (words 12..14) past them.
    #[allow(clippy::needless_range_loop)] // see `quarter_round`
    fn refill(&mut self) {
        // Lane l works on counter base+l; only words 12 and 13 differ
        // between lanes.
        let mut lane_ctr = [[0u32; LANES]; 2];
        for l in 0..LANES {
            let (lo, carry) = self.state[12].overflowing_add(l as u32);
            lane_ctr[0][l] = lo;
            lane_ctr[1][l] = self.state[13].wrapping_add(carry as u32);
        }
        let mut work = [[0u32; LANES]; BLOCK_WORDS];
        for (w, lanes) in work.iter_mut().enumerate() {
            *lanes = match w {
                12 => lane_ctr[0],
                13 => lane_ctr[1],
                _ => [self.state[w]; LANES],
            };
        }
        // 8 rounds = 4 double rounds of column + diagonal quarter-rounds.
        for _ in 0..4 {
            quarter_round(&mut work, 0, 4, 8, 12);
            quarter_round(&mut work, 1, 5, 9, 13);
            quarter_round(&mut work, 2, 6, 10, 14);
            quarter_round(&mut work, 3, 7, 11, 15);
            quarter_round(&mut work, 0, 5, 10, 15);
            quarter_round(&mut work, 1, 6, 11, 12);
            quarter_round(&mut work, 2, 7, 8, 13);
            quarter_round(&mut work, 3, 4, 9, 14);
        }
        for l in 0..LANES {
            for w in 0..BLOCK_WORDS {
                let input = match w {
                    12 => lane_ctr[0][l],
                    13 => lane_ctr[1][l],
                    _ => self.state[w],
                };
                self.buf[l * BLOCK_WORDS + w] = work[w][l].wrapping_add(input);
            }
        }
        self.idx = 0;
        let (lo, carry) = self.state[12].overflowing_add(LANES as u32);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        // "expand 32-byte k", the standard ChaCha constants.
        let mut state = [0u32; BLOCK_WORDS];
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        // Counter (words 12, 13) and nonce (words 14, 15) start at zero.
        ChaCha8Rng {
            state,
            buf: [0; BUF_WORDS],
            idx: BUF_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx == BUF_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        // Both words in one bounds check when the buffer has them; the
        // cold path (one word left, or empty) keeps the exact same
        // word-consumption order.
        if self.idx + 2 <= BUF_WORDS {
            let lo = self.buf[self.idx] as u64;
            let hi = self.buf[self.idx + 1] as u64;
            self.idx += 2;
            return lo | (hi << 32);
        }
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference single-block implementation, kept verbatim from the
    /// pre-batched generator: the batched keystream must match it word
    /// for word across many block boundaries.
    struct ScalarRef {
        state: [u32; BLOCK_WORDS],
        buf: [u32; BLOCK_WORDS],
        idx: usize,
    }

    impl ScalarRef {
        fn new(seed: [u8; 32]) -> Self {
            let batched = ChaCha8Rng::from_seed(seed);
            ScalarRef {
                state: batched.state,
                buf: [0; BLOCK_WORDS],
                idx: BLOCK_WORDS,
            }
        }

        fn quarter_round(s: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(16);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(12);
            s[a] = s[a].wrapping_add(s[b]);
            s[d] = (s[d] ^ s[a]).rotate_left(8);
            s[c] = s[c].wrapping_add(s[d]);
            s[b] = (s[b] ^ s[c]).rotate_left(7);
        }

        fn next_u32(&mut self) -> u32 {
            if self.idx == BLOCK_WORDS {
                let mut work = self.state;
                for _ in 0..4 {
                    Self::quarter_round(&mut work, 0, 4, 8, 12);
                    Self::quarter_round(&mut work, 1, 5, 9, 13);
                    Self::quarter_round(&mut work, 2, 6, 10, 14);
                    Self::quarter_round(&mut work, 3, 7, 11, 15);
                    Self::quarter_round(&mut work, 0, 5, 10, 15);
                    Self::quarter_round(&mut work, 1, 6, 11, 12);
                    Self::quarter_round(&mut work, 2, 7, 8, 13);
                    Self::quarter_round(&mut work, 3, 4, 9, 14);
                }
                for (out, (w, s)) in self.buf.iter_mut().zip(work.iter().zip(&self.state)) {
                    *out = w.wrapping_add(*s);
                }
                self.idx = 0;
                let (lo, carry) = self.state[12].overflowing_add(1);
                self.state[12] = lo;
                if carry {
                    self.state[13] = self.state[13].wrapping_add(1);
                }
            }
            let w = self.buf[self.idx];
            self.idx += 1;
            w
        }
    }

    #[test]
    fn batched_stream_matches_single_block_reference() {
        for seed_byte in [0u8, 1, 7, 255] {
            let seed = [seed_byte; 32];
            let mut batched = ChaCha8Rng::from_seed(seed);
            let mut scalar = ScalarRef::new(seed);
            for i in 0..4096 {
                assert_eq!(
                    batched.next_u32(),
                    scalar.next_u32(),
                    "word {i} of seed {seed_byte}"
                );
            }
        }
    }

    #[test]
    fn counter_carry_propagates_inside_a_batch() {
        // Force the 32-bit counter word to wrap mid-batch: lanes 2 and 3
        // must carry into word 13 even though the base counter does not.
        let mut rng = ChaCha8Rng::from_seed([3; 32]);
        rng.state[12] = u32::MAX - 1;
        rng.state[13] = 9;
        let mut scalar = ScalarRef::new([3; 32]);
        scalar.state[12] = u32::MAX - 1;
        scalar.state[13] = 9;
        for i in 0..BUF_WORDS * 2 {
            assert_eq!(rng.next_u32(), scalar.next_u32(), "word {i} across wrap");
        }
        assert_eq!(rng.state[13], 10, "base counter carried");
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 4, "{same} of 64 words collided");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_key_block_is_not_degenerate() {
        // The keystream must not echo the state or produce all-zero words.
        let mut rng = ChaCha8Rng::from_seed([0; 32]);
        let words: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert!(words.iter().any(|&w| w != 0));
        assert_ne!(words[0], 0x6170_7865);
    }

    #[test]
    fn counter_carries_across_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Consume several blocks; outputs must keep changing block to block.
        let first: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn fill_bytes_matches_words() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let mut buf = [0u8; 16];
        a.fill_bytes(&mut buf);
        let expect: Vec<u8> = (0..2).flat_map(|_| b.next_u64().to_le_bytes()).collect();
        assert_eq!(&buf[..], &expect[..]);
    }
}
