//! The JSON value tree and its accessors.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed (negative), or floating.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    U(u64),
    /// A negative integer.
    I(i64),
    /// A float (always finite).
    F(f64),
}

impl Number {
    /// The number as `u64`, when exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(v) => Some(v),
            Number::I(v) => u64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }

    /// The number as `i64`, when exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(v) => i64::try_from(v).ok(),
            Number::I(v) => Some(v),
            Number::F(_) => None,
        }
    }

    /// The number as `f64` (always possible).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(v) => Some(v as f64),
            Number::I(v) => Some(v as f64),
            Number::F(v) => Some(v),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(v) => write!(f, "{v}"),
            Number::I(v) => write!(f, "{v}"),
            Number::F(v) => {
                // Keep a float marker so the value round-trips as a float.
                if v == v.trunc() && v.abs() < 1e15 {
                    write!(f, "{v:.1}")
                } else {
                    write!(f, "{v}")
                }
            }
        }
    }
}

/// A JSON document. Object members keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered `(key, value)` members.
    Object(Vec<(String, Value)>),
}

/// Shared `null` for out-of-range indexing.
static NULL: Value = Value::Null;

impl Value {
    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if it is an exactly-representable number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an exactly-representable number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The string slice, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element vector, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The members, if this is an `Object`.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object member lookup; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>>(members: impl IntoIterator<Item = (K, Value)>) -> Value {
        Value::Object(members.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// `doc["key"]`; yields `null` for missing keys, like `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// `doc[i]`; yields `null` out of range, like `serde_json`.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<Value> for &str {
    fn eq(&self, other: &Value) -> bool {
        other.as_str() == Some(*self)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl Value {
    /// Renders compact JSON.
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => out.push_str(&n.to_string()),
            Value::String(s) => escape_into(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Object(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders two-space-indented JSON.
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Value::Array(a) if !a.is_empty() => {
                out.push_str("[\n");
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(depth + 1));
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push(']');
            }
            Value::Object(m) if !m.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(depth + 1));
                    escape_into(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(depth));
                out.push('}');
            }
            other => other.write_compact(out),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_and_accessors() {
        let doc = Value::object([
            ("name", Value::String("bf".into())),
            ("n", Value::Number(Number::U(12))),
            ("xs", Value::Array(vec![Value::Bool(true)])),
        ]);
        assert_eq!(doc["name"], "bf");
        assert_eq!(doc["n"].as_u64(), Some(12));
        assert_eq!(doc["xs"].as_array().unwrap().len(), 1);
        assert!(doc["missing"].is_null());
        assert!(doc["xs"][5].is_null());
    }

    #[test]
    fn compact_printing_escapes() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(v.to_compact_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn floats_keep_a_marker() {
        assert_eq!(Number::F(2.0).to_string(), "2.0");
        assert_eq!(Number::F(2.5).to_string(), "2.5");
        assert_eq!(Number::U(2).to_string(), "2");
    }
}
