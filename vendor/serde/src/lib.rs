//! Offline vendored serialization layer.
//!
//! Upstream `serde` is unreachable in this build environment, and the
//! workspace only ever serializes *to JSON*, so this stand-in collapses
//! the `Serializer` machinery to one step: a [`Serialize`] type renders
//! itself into the [`Value`] tree that `serde_json` then prints. There are
//! no proc-macro derives; the handful of serialized structs implement
//! [`Serialize`] by hand.

pub mod value;

pub use value::{Number, Value};

/// Types that can render themselves as a JSON value tree.
pub trait Serialize {
    /// The JSON representation of `self`.
    fn to_json(&self) -> Value;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl Serialize for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_serialize_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}

macro_rules! impl_serialize_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}

impl_serialize_unsigned!(u8, u16, u32, u64, usize);
impl_serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    /// Non-finite floats have no JSON representation and become `null`,
    /// matching upstream `serde_json`.
    fn to_json(&self) -> Value {
        if self.is_finite() {
            Value::Number(Number::F(*self))
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_json(&self) -> Value {
        (*self as f64).to_json()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json(&self) -> Value {
        self.as_slice().to_json()
    }
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_json(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.as_ref().to_string(), v.to_json()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        assert_eq!(3u32.to_json(), Value::Number(Number::U(3)));
        assert_eq!((-2i32).to_json(), Value::Number(Number::I(-2)));
        assert_eq!(true.to_json(), Value::Bool(true));
        assert_eq!("hi".to_json(), Value::String("hi".into()));
        assert_eq!(f64::NAN.to_json(), Value::Null);
    }

    #[test]
    fn containers_render() {
        assert_eq!(None::<u32>.to_json(), Value::Null);
        assert_eq!(Some(1u32).to_json(), Value::Number(Number::U(1)));
        let v = vec![1u32, 2];
        assert_eq!(
            v.to_json(),
            Value::Array(vec![
                Value::Number(Number::U(1)),
                Value::Number(Number::U(2))
            ])
        );
        let mut m = std::collections::BTreeMap::new();
        m.insert("k", 7u64);
        assert_eq!(m.to_json()["k"].as_u64(), Some(7));
    }
}
